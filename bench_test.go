// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per Figure 8 chart (BenchmarkFig8CG, BenchmarkFig8Laplace,
// BenchmarkFig8Neurosys) runs each problem size in each of the four
// program versions; the per-op time is the full application runtime, so
// the version-to-version ratios are the heights of the paper's bars. The
// remaining benchmarks quantify the design arguments of Sections 1.2 and
// 4.2: message-logging volume, piggyback codec cost, checkpoint
// serialization bandwidth, and the per-collective control exchange.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package ccift_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ccift"
	"ccift/internal/apps/cg"
	"ccift/internal/apps/laplace"
	"ccift/internal/apps/neurosys"
	"ccift/internal/baseline"
	"ccift/internal/ckpt"
	"ccift/internal/engine"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// benchRanks keeps benchmark worlds small enough that per-op times are
// stable; the fig8 command runs the full-width sweeps.
const benchRanks = 4

var fig8Modes = []protocol.Mode{protocol.Unmodified, protocol.PiggybackOnly, protocol.NoAppState, protocol.Full}

func runBench(b *testing.B, prog engine.Program, mode protocol.Mode, everyN int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := engine.Config{Ranks: benchRanks, Mode: mode, EveryN: everyN}
		if _, err := engine.Run(cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8CG is Figure 8 (left): dense Conjugate Gradient.
func BenchmarkFig8CG(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		p := cg.Params{N: n, Iters: 30}
		for _, mode := range fig8Modes {
			b.Run(fmt.Sprintf("n=%d/%v", n, mode), func(b *testing.B) {
				b.SetBytes(int64(p.StateBytesPerRank(benchRanks)))
				runBench(b, cg.Program(p), mode, 10)
			})
		}
	}
}

// BenchmarkFig8Laplace is Figure 8 (middle): the Laplace solver.
func BenchmarkFig8Laplace(b *testing.B) {
	for _, n := range []int{256, 512} {
		p := laplace.Params{N: n, Iters: 100}
		for _, mode := range fig8Modes {
			b.Run(fmt.Sprintf("n=%d/%v", n, mode), func(b *testing.B) {
				b.SetBytes(int64(p.StateBytesPerRank(benchRanks)))
				runBench(b, laplace.Program(p), mode, 35)
			})
		}
	}
}

// BenchmarkFig8Neurosys is Figure 8 (right): the neuron-network simulator.
func BenchmarkFig8Neurosys(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		p := neurosys.Params{K: k, Iters: 60}
		for _, mode := range fig8Modes {
			b.Run(fmt.Sprintf("k=%d/%v", k, mode), func(b *testing.B) {
				b.SetBytes(int64(p.StateBytesPerRank(benchRanks)))
				runBench(b, neurosys.Program(p), mode, 20)
			})
		}
	}
}

// BenchmarkAblationLogging is the Section 1.2 argument against message
// logging (DESIGN.md experiment E9): for the same halo-exchange workload,
// compare the bytes a sender-based message log must retain per checkpoint
// interval against the C3 protocol's late-message log. The two volumes are
// reported as custom metrics.
func BenchmarkAblationLogging(b *testing.B) {
	const iters, width, everyN = 40, 512, 10
	prog := func(r *engine.Rank) (any, error) {
		n := r.Size()
		next, prev := (r.Rank()+1)%n, (r.Rank()-1+n)%n
		var it int
		x := make([]float64, width)
		r.Register("it", &it)
		r.Register("x", &x)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			r.SendF64(next, 1, x)
			in := r.RecvF64(prev, 1)
			for i := range x {
				x[i] = x[i]*0.5 + in[i]*0.5
			}
		}
		return nil, nil
	}
	b.ReportAllocs()
	var sent, c3Log, ckpts int64
	for i := 0; i < b.N; i++ {
		res, err := engine.Run(engine.Config{Ranks: benchRanks, Mode: protocol.Full, EveryN: everyN}, prog)
		if err != nil {
			b.Fatal(err)
		}
		sent, c3Log, ckpts = 0, 0, 0
		for _, s := range res.Stats {
			sent += s.BytesSent
			c3Log += s.LogBytes
			ckpts += s.CheckpointsTaken
		}
	}
	intervals := ckpts/benchRanks + 1
	b.ReportMetric(float64(sent)/float64(intervals), "senderlog-B/interval")
	b.ReportMetric(float64(c3Log), "c3log-B/run")
}

// BenchmarkAblationStateExclusion quantifies Section 7's recomputation
// checkpointing on the workload the paper motivates it with: CG's
// read-only matrix block dominates the checkpoint, and excluding it trades
// checkpoint volume for a fingerprint plus regeneration on restart. The
// checkpointed bytes per run are reported as a custom metric.
func BenchmarkAblationStateExclusion(b *testing.B) {
	for _, exclude := range []bool{false, true} {
		name := "save-everything"
		if exclude {
			name = "recompute-matrix"
		}
		b.Run(name, func(b *testing.B) {
			p := cg.Params{N: 512, Iters: 20, ExcludeMatrix: exclude}
			b.SetBytes(int64(p.StateBytesPerRank(benchRanks)))
			b.ReportAllocs()
			var ckptBytes int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{Ranks: benchRanks, Mode: protocol.Full, EveryN: 6}, cg.Program(p))
				if err != nil {
					b.Fatal(err)
				}
				ckptBytes = 0
				for _, s := range res.Stats {
					ckptBytes += s.CheckpointBytes
				}
			}
			b.ReportMetric(float64(ckptBytes), "ckpt-B/run")
		})
	}
}

// BenchmarkAblationReplication quantifies Section 7's distributed
// redundant data: a table held identically by every rank is checkpointed
// once instead of once per rank.
func BenchmarkAblationReplication(b *testing.B) {
	const tableLen = 1 << 17 // 1 MB per rank
	prog := func(replicated bool) engine.Program {
		return func(r *engine.Rank) (any, error) {
			var it int
			table := make([]float64, tableLen)
			r.Register("it", &it)
			if replicated {
				r.RegisterReplicated("table", &table)
			} else {
				r.Register("table", &table)
			}
			for ; it < 8; it++ {
				r.PotentialCheckpoint()
				r.Barrier()
			}
			return nil, nil
		}
	}
	for _, replicated := range []bool{false, true} {
		name := "per-rank-copies"
		if replicated {
			name = "replicated-once"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(8 * tableLen)
			var ckptBytes int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{Ranks: benchRanks, Mode: protocol.Full, EveryN: 3}, prog(replicated))
				if err != nil {
					b.Fatal(err)
				}
				ckptBytes = 0
				for _, s := range res.Stats {
					ckptBytes += s.CheckpointBytes
				}
			}
			b.ReportMetric(float64(ckptBytes), "ckpt-B/run")
		})
	}
}

// BenchmarkSenderLogSend measures the per-send cost message logging adds:
// the retained copy is the scheme's defining overhead.
func BenchmarkSenderLogSend(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("msg=%dB", size), func(b *testing.B) {
			w := mpi.NewWorld(2, mpi.Options{})
			sl := baseline.NewSenderLog(w.Comm(0))
			payload := make([]byte, size)
			sink := w.Comm(1)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sl.Send(1, 1, payload)
				sink.Recv(0, 1)
				if i%1024 == 0 {
					sl.Truncate() // periodic stable point, as a checkpoint would provide
				}
			}
		})
	}
}

// BenchmarkTypedSend compares the v1 typed messaging path against the v0
// helpers on the application send/receive hot path: ccift.Send encodes
// into a fresh buffer and hands its ownership to the substrate (one
// payload copy), while SendF64 packs with F64Bytes and the substrate
// defensively copies again (two copies). Both variants run the identical
// two-rank ping stream through the full protocol layer, so the delta is
// exactly the copy the typed path removes.
func BenchmarkTypedSend(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		elems := size / 8
		for _, typed := range []bool{false, true} {
			name := fmt.Sprintf("msg=%dB/sendf64", size)
			if typed {
				name = fmt.Sprintf("msg=%dB/typed", size)
			}
			b.Run(name, func(b *testing.B) {
				iters := b.N
				payload := make([]float64, elems)
				// Ping-pong keeps exactly one message in flight, so the
				// queue depth (and with it GC noise) is bounded and the
				// per-op figure is the send+receive path itself.
				prog := func(r *ccift.Rank) (any, error) {
					me, peer := r.Rank(), 1-r.Rank()
					for i := 0; i < iters; i++ {
						if me == 0 {
							if typed {
								ccift.Send(r, peer, 1, payload)
								ccift.Recv[float64](r, peer, 2)
							} else {
								r.SendF64(peer, 1, payload)
								r.RecvF64(peer, 2)
							}
						} else {
							if typed {
								in := ccift.Recv[float64](r, peer, 1)
								ccift.Send(r, peer, 2, in)
							} else {
								in := r.RecvF64(peer, 1)
								r.SendF64(peer, 2, in)
							}
						}
					}
					return nil, nil
				}
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				if _, err := ccift.Run(ccift.Config{Ranks: 2, Mode: ccift.Full}, prog); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkPiggybackCodec measures the Section 4.2 single-integer encoding
// on the protocol's hot path: every application message packs and unpacks
// one of these.
func BenchmarkPiggybackCodec(b *testing.B) {
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		p := protocol.Piggyback{Color: i&1 == 0, Logging: i&2 == 0, MessageID: uint32(i) & 0x3FFFFFFF}
		sink = p.Pack()
		q := protocol.UnpackPiggyback(sink)
		if q.MessageID != p.MessageID {
			b.Fatal("round trip failed")
		}
	}
	_ = sink
}

// BenchmarkCheckpointSerialization measures the application-state encoder
// (PS + VDS + heap) at several state sizes — the cost that separates the
// "full checkpoint" bars from the rest in Figure 8.
func BenchmarkCheckpointSerialization(b *testing.B) {
	for _, mb := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("state=%dMB", mb), func(b *testing.B) {
			s := ckpt.NewSaver()
			var it int
			grid := make([]float64, mb<<20/8)
			if err := s.VDS.Push("it", &it); err != nil {
				b.Fatal(err)
			}
			if err := s.VDS.Push("grid", &grid); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * len(grid)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blob, err := s.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if len(blob) < 8*len(grid) {
					b.Fatal("short snapshot")
				}
			}
		})
	}
}

// BenchmarkCheckpointBlocked measures how long a rank is stopped per
// checkpoint — the overhead Figure 8 shows growing linearly with state
// size — on the synchronous write path vs the asynchronous pipeline, over
// a real disk-backed store. Sync blocks through serialize + chunk-hash +
// fsync'd writes; async blocks only for the copy-on-write freeze and
// overlaps the rest with computation, so its blocked-ns/ckpt metric sits
// far below sync's at large states. The program dirties a contiguous ~5%
// of its grid per epoch, so the written/logical-bytes metric also shows
// the chunk dedup win: a repeat checkpoint re-writes only dirty chunks.
// (Total ns/op is NOT comparable across variants — the loop spins extra
// compute iterations until each epoch commits, which is exactly the work
// the async pipeline lets the rank do while flushing. blocked-ns/ckpt is
// the headline number; CI turns these metrics into BENCH_pr4.json.
// BenchmarkCheckpointDirtyFraction extends this axis with dirty-region
// incremental freezes — BENCH_pr5.json.)
func BenchmarkCheckpointBlocked(b *testing.B) {
	for _, kb := range []int{256, 4096, 16384} {
		for _, variant := range []string{"sync", "async"} {
			b.Run(fmt.Sprintf("state=%dKB/%s", kb, variant), func(b *testing.B) {
				const ckpts = 8
				prog := func(r *engine.Rank) (any, error) {
					var it int
					grid := make([]float64, kb<<10/8)
					// Distinct initial contents: an untouched grid would be
					// runs of zero chunks that dedup against each other and
					// flatter the incremental numbers.
					for i := range grid {
						grid[i] = float64(i)
					}
					r.Register("it", &it)
					r.Register("grid", &grid)
					for ; it < 1_000_000 && r.Epoch() < ckpts; it++ {
						start := (r.Epoch() * len(grid) / 7) % len(grid)
						for j := 0; j < len(grid)/20; j++ {
							grid[(start+j)%len(grid)]++
						}
						r.PotentialCheckpoint()
					}
					return nil, nil
				}
				var blocked, flush, taken, logical, written int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					disk, err := storage.NewDisk(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					res, err := engine.Run(engine.Config{
						Ranks: 1, Mode: protocol.Full, EveryN: 1, Store: disk,
						SyncCheckpoint: variant == "sync",
					}, prog)
					if err != nil {
						b.Fatal(err)
					}
					s := res.Stats[0]
					if s.CheckpointsTaken != ckpts {
						b.Fatalf("%d checkpoints taken, want %d", s.CheckpointsTaken, ckpts)
					}
					blocked += s.CheckpointBlockedNs
					flush += s.CheckpointFlushNs
					taken += s.CheckpointsTaken
					logical += s.CheckpointBytes
					written += s.CheckpointBytesWritten
				}
				b.ReportMetric(float64(blocked)/float64(taken), "blocked-ns/ckpt")
				b.ReportMetric(float64(flush)/float64(taken), "flush-ns/ckpt")
				b.ReportMetric(float64(written)/float64(logical), "written/logical-bytes")
			})
		}
	}
}

// BenchmarkCheckpointDirtyFraction is the dirty-region axis of the
// blocked-time story (PR 5): state is modeled as 64KB heap "pages" — the
// granularity the dirty tracker works at — and each epoch rewrites a
// fixed fraction of them (with Touch write intent) before checkpointing.
// The full variant freezes everything every epoch; the incr variant
// (WithIncrementalFreeze) copies only the touched pages and re-references
// the prior epoch's frozen slabs for the rest, so copied-B/ckpt tracks
// the dirty fraction instead of the state size, and blocked-ns/ckpt
// shrinks with it. Both run the async pipeline over a disk store; CI
// turns the metrics into BENCH_pr5.json.
func BenchmarkCheckpointDirtyFraction(b *testing.B) {
	const stateKB = 16384
	const pageKB = 64
	const pages = stateKB / pageKB
	// 16 epochs so the steady state dominates the per-checkpoint averages:
	// the first epoch is a full copy in both variants (there is no previous
	// frozen epoch to share), and over 8 epochs that cold start alone kept
	// the 10%-dirty incremental average above the 20% acceptance bar.
	const ckpts = 16
	// The -vds variants hold the same 16MB as ONE registered []float64 grid
	// instead of heap pages: dirty tracking there is the page-granular VDS
	// path (TouchRange stamping 64KB pages inside the entry) introduced in
	// PR 9, where the heap variants exercise per-block tracking from PR 5.
	const gridElems = stateKB << 10 / 8
	const elemsPerPage = pageKB << 10 / 8
	for _, pct := range []int{1, 10, 50} {
		for _, variant := range []string{"full", "incr", "full-vds", "incr-vds"} {
			b.Run(fmt.Sprintf("state=%dKB/dirty=%d%%/%s", stateKB, pct, variant), func(b *testing.B) {
				dirtyPages := pages * pct / 100
				if dirtyPages < 1 {
					dirtyPages = 1
				}
				heapProg := func(r *engine.Rank) (any, error) {
					var it int
					r.Register("it", &it)
					h := r.Heap()
					ids := make([]int, 0, pages)
					for i := 0; i < pages; i++ {
						blk := h.Alloc(pageKB << 10)
						for j := range blk.Data {
							// Distinct page contents: identical pages would
							// chunk-dedup against each other and flatter
							// the incremental numbers.
							blk.Data[j] = byte(i*31 + j)
						}
						ids = append(ids, blk.ID)
					}
					for ; it < 1_000_000 && r.Epoch() < ckpts; it++ {
						start := r.Epoch() * 7919
						for p := 0; p < dirtyPages; p++ {
							id := ids[(start+p)%pages]
							blk := h.Lookup(id)
							for j := 0; j < 128; j++ {
								blk.Data[(it*131+j*509)%len(blk.Data)]++
							}
							h.Touch(id)
						}
						r.PotentialCheckpoint()
					}
					return nil, nil
				}
				vdsProg := func(r *engine.Rank) (any, error) {
					var it int
					grid := make([]float64, gridElems)
					for i := range grid {
						grid[i] = float64(i) // distinct contents, as above
					}
					r.Register("it", &it)
					r.Register("grid", &grid)
					for ; it < 1_000_000 && r.Epoch() < ckpts; it++ {
						start := r.Epoch() * 7919
						for p := 0; p < dirtyPages; p++ {
							off := ((start + p) % pages) * elemsPerPage
							for j := 0; j < 128; j++ {
								grid[off+(it*131+j*509)%elemsPerPage]++
							}
							r.TouchRange("grid", off, elemsPerPage)
						}
						r.PotentialCheckpoint()
					}
					return nil, nil
				}
				prog := heapProg
				if strings.HasSuffix(variant, "-vds") {
					prog = vdsProg
				}
				var blocked, taken, copied, logical, written int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					disk, err := storage.NewDisk(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					res, err := engine.Run(engine.Config{
						Ranks: 1, Mode: protocol.Full, EveryN: 1, Store: disk,
						FullFreeze: strings.HasPrefix(variant, "full"),
					}, prog)
					if err != nil {
						b.Fatal(err)
					}
					s := res.Stats[0]
					if s.CheckpointsTaken != ckpts {
						b.Fatalf("%d checkpoints taken, want %d", s.CheckpointsTaken, ckpts)
					}
					blocked += s.CheckpointBlockedNs
					taken += s.CheckpointsTaken
					copied += s.CheckpointBytesCopied
					logical += s.CheckpointBytes
					written += s.CheckpointBytesWritten
				}
				b.ReportMetric(float64(blocked)/float64(taken), "blocked-ns/ckpt")
				b.ReportMetric(float64(copied)/float64(taken), "copied-B/ckpt")
				b.ReportMetric(float64(written)/float64(logical), "written/logical-bytes")
			})
		}
	}
}

// BenchmarkAsyncRankSlowdown measures how much the checkpoint pipeline
// slows the compute rank: a fixed-work iteration loop checkpoints 16MB of
// state every 4 iterations over a disk store, and ns/iter is compared
// against a no-checkpoint baseline of the same program (the "none" run
// inside each variant). sync blocks for the whole flush; async overlaps
// it; async-nogov disables the bandwidth governor, so its delta over
// async is the protection the governor buys when flush I/O competes with
// compute. CI turns slowdown-vs-none into BENCH_pr9.json.
func BenchmarkAsyncRankSlowdown(b *testing.B) {
	const gridElems = (16384 << 10) / 8
	const iters = 64
	const everyN = 4
	prog := func(r *engine.Rank) (any, error) {
		var it int
		var acc float64
		grid := make([]float64, gridElems)
		for i := range grid {
			grid[i] = float64(i % 1024)
		}
		r.Register("it", &it)
		r.Register("acc", &acc)
		r.Register("grid", &grid)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			// Fixed compute per iteration: a full read reduction over the
			// grid (the dominant cost, untouched state) plus a write sweep
			// over one rotating ~3% window, recorded page-granularly.
			for j := 0; j < gridElems; j++ {
				acc += grid[j]
			}
			const window = gridElems / 32
			off := (it % 32) * window
			for j := off; j < off+window; j++ {
				grid[j] = grid[j]*0.999 + 1
			}
			r.TouchRange("grid", off, window)
		}
		return acc, nil
	}
	run := func(b *testing.B, cfg engine.Config) time.Duration {
		b.Helper()
		t0 := time.Now()
		if _, err := engine.Run(cfg, prog); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	for _, variant := range []string{"sync", "async", "async-nogov"} {
		b.Run(variant, func(b *testing.B) {
			var base, with time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base += run(b, engine.Config{Ranks: 1, Mode: protocol.Unmodified})
				disk, err := storage.NewDisk(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				with += run(b, engine.Config{
					Ranks: 1, Mode: protocol.Full, EveryN: everyN, Store: disk,
					SyncCheckpoint:  variant == "sync",
					NoFlushGovernor: variant == "async-nogov",
				})
			}
			b.ReportMetric(float64(with.Nanoseconds())/float64(int64(iters)*int64(b.N)), "ns/iter")
			b.ReportMetric(float64(with)/float64(base), "slowdown-vs-none")
		})
	}
}

// BenchmarkCheckpointRestore measures the restore side: decode plus
// write-back through the registered pointers.
func BenchmarkCheckpointRestore(b *testing.B) {
	for _, mb := range []int{1, 8} {
		b.Run(fmt.Sprintf("state=%dMB", mb), func(b *testing.B) {
			s := ckpt.NewSaver()
			var it int
			grid := make([]float64, mb<<20/8)
			if err := s.VDS.Push("it", &it); err != nil {
				b.Fatal(err)
			}
			if err := s.VDS.Push("grid", &grid); err != nil {
				b.Fatal(err)
			}
			blob, err := s.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * len(grid)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ckpt.NewSaver()
				if err := r.StartRestore(blob); err != nil {
					b.Fatal(err)
				}
				var it2 int
				grid2 := make([]float64, 0)
				if err := r.VDS.Push("it", &it2); err != nil {
					b.Fatal(err)
				}
				if err := r.VDS.Push("grid", &grid2); err != nil {
					b.Fatal(err)
				}
				if len(grid2) != len(grid) {
					b.Fatal("restore lost data")
				}
			}
		})
	}
}

// BenchmarkControlCollective isolates the cost the protocol adds to every
// collective call — the one-byte allgather of (epoch color, amLogging)
// that dominates Neurosys at small problem sizes.
func BenchmarkControlCollective(b *testing.B) {
	for _, payload := range []int{8, 256, 8192} {
		for _, mode := range []protocol.Mode{protocol.Unmodified, protocol.PiggybackOnly} {
			b.Run(fmt.Sprintf("payload=%dB/%v", payload, mode), func(b *testing.B) {
				iters := b.N
				prog := func(r *engine.Rank) (any, error) {
					data := make([]byte, payload)
					for i := 0; i < iters; i++ {
						r.Allgather(data)
					}
					return nil, nil
				}
				b.SetBytes(int64(payload))
				b.ResetTimer()
				if _, err := engine.Run(engine.Config{Ranks: benchRanks, Mode: mode}, prog); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkBlockingVsC3Checkpoint compares one global checkpoint under the
// blocking baseline against the C3 protocol for the same state size. The
// blocking version stalls every rank for the duration; C3 overlaps the
// logging phase with execution.
func BenchmarkBlockingVsC3Checkpoint(b *testing.B) {
	const stateMB = 4
	b.Run("blocking", func(b *testing.B) {
		b.SetBytes(stateMB << 20)
		for i := 0; i < b.N; i++ {
			store := storage.NewCheckpointStore(storage.NewMemory())
			w := mpi.NewWorld(benchRanks, mpi.Options{})
			done := make(chan error, benchRanks)
			for r := 0; r < benchRanks; r++ {
				go func(r int) {
					bl := baseline.NewBlocking(w.Comm(r), store)
					_, err := bl.Checkpoint(make([]byte, stateMB<<20))
					done <- err
				}(r)
			}
			for r := 0; r < benchRanks; r++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("c3", func(b *testing.B) {
		b.SetBytes(stateMB << 20)
		prog := func(r *engine.Rank) (any, error) {
			state := make([]float64, stateMB<<20/8)
			var it int
			r.Register("it", &it)
			r.Register("state", &state)
			for ; it < 2; it++ {
				r.PotentialCheckpoint()
				r.Barrier()
			}
			return nil, nil
		}
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(engine.Config{Ranks: benchRanks, Mode: protocol.Full, EveryN: 1}, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecovery measures the full rollback-restart cycle: failure
// detection, state restore, log replay, and completion of the remaining
// work.
func BenchmarkRecovery(b *testing.B) {
	const width = 4096
	prog := func(r *ccift.Rank) (any, error) {
		n := r.Size()
		next, prev := (r.Rank()+1)%n, (r.Rank()-1+n)%n
		var it int
		x := make([]float64, width)
		r.Register("it", &it)
		r.Register("x", &x)
		for ; it < 20; it++ {
			r.PotentialCheckpoint()
			r.SendF64(next, 1, x)
			in := r.RecvF64(prev, 1)
			for i := range x {
				x[i] = x[i]*0.5 + in[i]*0.5 + 1
			}
		}
		return x[0], nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ccift.Config{
			Ranks: benchRanks, Mode: ccift.Full, EveryN: 5,
			Failures: []ccift.Failure{{Rank: 1, AtOp: 90, Incarnation: 0}},
		}
		res, err := ccift.Run(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		if res.Restarts != 1 {
			b.Fatalf("restarts = %d", res.Restarts)
		}
	}
}
