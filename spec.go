package ccift

import (
	"fmt"
	"io"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/engine"
	"ccift/internal/protocol"
	"ccift/internal/sim"
)

// Spec describes a run for Launch. Build one with NewSpec and functional
// options; the zero-option spec is a single in-process rank with the
// protocol disabled. The same Spec runs unchanged on either substrate —
// WithDistributed is the only thing that moves a program from goroutines
// to one OS process per rank.
type Spec struct {
	cfg         engine.Config
	distributed *Distributed
	sim         *sim.Scenario
	metricsAddr string
}

// Option mutates a Spec under construction.
type Option func(*Spec)

// NewSpec builds a Spec from options. Validation happens in Launch (and in
// Validate), not here, so options can be applied in any order.
func NewSpec(opts ...Option) *Spec {
	s := &Spec{cfg: engine.Config{Ranks: 1}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithRanks sets the number of ranks (processes of the computation).
func WithRanks(n int) Option { return func(s *Spec) { s.cfg.Ranks = n } }

// WithMode selects the Figure-8 program version; default Unmodified.
func WithMode(m Mode) Option { return func(s *Spec) { s.cfg.Mode = m } }

// WithStore sets the stable storage checkpoints are written to (in-process
// substrate only; distributed runs share a directory via Distributed
// .StoreDir). Default: a fresh in-memory store.
func WithStore(st Stable) Option { return func(s *Spec) { s.cfg.Store = st } }

// WithEveryN makes the initiator request a global checkpoint every N-th
// PotentialCheckpoint call it executes. Mutually exclusive with
// WithInterval.
func WithEveryN(n int) Option { return func(s *Spec) { s.cfg.EveryN = n } }

// WithInterval makes the initiator request a global checkpoint on a wall
// clock (the paper used 30 s). Mutually exclusive with WithEveryN.
func WithInterval(d time.Duration) Option { return func(s *Spec) { s.cfg.Interval = d } }

// WithFailures schedules stopping failures. On the in-process substrate a
// failure is a simulated stop; on the distributed substrate it is a real
// self-SIGKILL of the rank's OS process.
func WithFailures(fs ...Failure) Option {
	return func(s *Spec) { s.cfg.Failures = append(s.cfg.Failures, fs...) }
}

// WithMaxRestarts bounds rollback attempts; default 10.
func WithMaxRestarts(n int) Option { return func(s *Spec) { s.cfg.MaxRestarts = n } }

// WithSeed sets the base seed for per-rank application randomness.
func WithSeed(seed int64) Option { return func(s *Spec) { s.cfg.Seed = seed } }

// WithDebug enables protocol assertions.
func WithDebug() Option { return func(s *Spec) { s.cfg.Debug = true } }

// WithAsyncCheckpoint toggles the asynchronous checkpoint pipeline, which
// is on by default: a checkpoint blocks the rank only to freeze a copy of
// its live state, and serialization plus the durable (chunked,
// content-deduplicated) write overlap continued computation on a
// background flusher. The commit record still waits for every rank's
// flush, so crash-recovery semantics are identical. Pass false to restore
// the classic stop-serialize-fsync path (the Figure 8 baselines).
func WithAsyncCheckpoint(enabled bool) Option {
	return func(s *Spec) { s.cfg.SyncCheckpoint = !enabled }
}

// WithChunkSize sets the chunk granularity (bytes) of the content-hashed
// state writer; unchanged chunks are re-referenced instead of re-written
// across epochs. Zero selects the default (256 KiB).
func WithChunkSize(n int) Option { return func(s *Spec) { s.cfg.ChunkSize = n } }

// WithIncrementalFreeze toggles dirty-region checkpointing, which is ON
// by default: the blocking freeze copies only the regions (registered
// variables, pages of large variables, heap blocks) the program touched
// since the last checkpoint and re-references the previous epoch's frozen
// slabs for the clean ones, so a mostly-clean epoch blocks for O(dirty)
// instead of O(state). Programs must honor the write-intent contract —
// call Rank.Touch (or TouchRange for a sub-range of a large slice,
// Heap().Touch for heap blocks) after the last write to a region and
// before the next PotentialCheckpoint; scalar variables are exempt, and
// registration/resize/unregister dirty implicitly. The serialized
// checkpoint bytes are identical to a full freeze's, so chunk dedup,
// storage and recovery are unaffected. Pass false (or use WithFullFreeze)
// for programs that do not maintain Touch calls; WithFreezeCrossCheck
// verifies the contract at runtime.
func WithIncrementalFreeze(enabled bool) Option {
	return func(s *Spec) { s.cfg.FullFreeze = !enabled }
}

// WithFullFreeze is the escape hatch from the incremental-freeze default:
// every checkpoint re-copies the whole registered state, and the Touch
// write-intent contract does not apply. Equivalent to
// WithIncrementalFreeze(false).
func WithFullFreeze() Option {
	return func(s *Spec) { s.cfg.FullFreeze = true }
}

// WithFreezeCrossCheck enables the freeze verifier debug mode: after
// every freeze, while the rank is still blocked, the frozen view is
// compared byte-for-byte against a fresh encode of the live state. A
// mutation that escaped Touch/TouchRange — which would otherwise surface
// as silently stale recovered state — fails the run immediately with an
// ErrProgram-category error naming the variable (or heap block). Costs a
// full state encode per checkpoint, so use it in tests and when
// migrating a program to the incremental default, not in production.
func WithFreezeCrossCheck() Option {
	return func(s *Spec) { s.cfg.FreezeCrossCheck = true }
}

// WithFlushBandwidth caps the checkpoint writer's streaming throughput at
// the given bytes per second, on both the synchronous and asynchronous
// paths. Zero (the default) means no fixed cap. This is independent of
// the adaptive flush governor, which watches the rank's compute
// throughput and only ever throttles further; a fixed cap is chiefly
// useful to model a slow store deterministically or to hard-bound the
// flusher's interference.
func WithFlushBandwidth(bytesPerSecond float64) Option {
	return func(s *Spec) { s.cfg.FlushBandwidth = bytesPerSecond }
}

// WithFlushGovernor toggles the adaptive flush bandwidth governor, which
// is on by default in async mode: the rank's compute-iteration rate is
// measured with and without a flush in flight, and the flusher's write
// stream is token-bucket throttled so the observed slowdown converges to
// ~10%. Pass false for an ungoverned flusher (the pre-governor behavior,
// kept for benchmarks and for runs that prefer fastest-possible
// checkpoint durability over steady compute throughput).
func WithFlushGovernor(enabled bool) Option {
	return func(s *Spec) { s.cfg.NoFlushGovernor = !enabled }
}

// WithChunkPipeline sets the chunked state writer's pipeline depth: how
// many chunks may be in flight between the serializer, the hash/dedup
// worker, and the store writer. Zero (the default) selects the default
// depth; negative forces the serial single-goroutine writer. Chunk
// boundaries, hashes and manifests are identical in every mode — only
// wall-clock overlap changes.
func WithChunkPipeline(depth int) Option {
	return func(s *Spec) { s.cfg.ChunkPipeline = depth }
}

// WithTracer streams protocol events from every rank (in-process substrate
// only; the recorder lives in this process).
func WithTracer(t Tracer) Option { return func(s *Spec) { s.cfg.Tracer = t } }

// WithChaos enables adversarial reordering of application messages; all
// additionally reorders reserved control tags.
func WithChaos(seed int64, all bool) Option {
	return func(s *Spec) { s.cfg.ChaosSeed, s.cfg.ChaosAll = seed, all }
}

// WithDetectorTimeout routes in-process failure detection through the
// heartbeat detector with the given suspicion timeout instead of the
// default instantaneous self-report.
func WithDetectorTimeout(d time.Duration) Option {
	return func(s *Spec) { s.cfg.DetectorTimeout = d }
}

// WithTransport installs a custom wire substrate beneath the in-process
// world: f is invoked with the freshly built world of each incarnation and
// must return the Transport it runs on. Latency models and cross-process
// shims plug in here without the engine or protocol layers changing.
func WithTransport(f func(w *World) Transport) Option {
	return func(s *Spec) { s.cfg.NewTransport = f }
}

// Scenario configures the simulated substrate selected by WithSimulated:
// the seed every pseudo-random schedule derives from, per-link latency and
// jitter, drop/duplication probabilities, partition windows, scheduled rank
// crashes, per-rank clock skew, and stable-storage slowdown. The zero
// Scenario is a fault-free zero-latency network. Scenarios marshal to JSON
// (String renders it), so a failing run's schedule can be stored and
// replayed exactly.
type Scenario = sim.Scenario

// Partition is a Scenario network-partition window.
type Partition = sim.Partition

// Crash is a Scenario entry stopping a rank at a virtual time.
type Crash = sim.Crash

// Skew is a Scenario per-rank clock offset and rate distortion.
type Skew = sim.Skew

// SlowStore is a Scenario stable-storage slowdown model.
type SlowStore = sim.SlowStore

// WithSimulated selects the simulated substrate: ranks still run as
// goroutines, but every message crosses a simulated network driven by a
// deterministic discrete-event scheduler with virtual time. Timeouts,
// heartbeat schedules and latency distributions elapse in virtual time, so
// a 30-second suspicion timeout costs microseconds of wall clock, and the
// entire schedule — deliveries, duplicates, retransmissions, partitions,
// crashes — is a pure function of the scenario, replayable from its seed.
//
// Under simulation the engine runs the synchronous checkpoint path: the
// async flusher's compute/flush overlap is a wall-clock optimization whose
// scheduling the simulation cannot order deterministically. Scenario
// crashes are silent stops, so failure detection defaults to the heartbeat
// detector (Scenario.DetectorTimeout, then WithDetectorTimeout, then a
// 500ms virtual default) rather than the instantaneous self-report.
func WithSimulated(sc Scenario) Option {
	return func(s *Spec) { s.sim = &sc }
}

// Distributed configures the TCP/process substrate: one OS process per
// rank, wire messages over a full TCP mesh, checkpoints in a shared
// on-disk store, failures as real SIGKILLs.
type Distributed struct {
	// StoreDir is the shared checkpoint directory; default a fresh scratch
	// directory under WorkDir (removed on success). WorkDir is the scratch
	// root for rendezvous files; default a fresh temp directory.
	StoreDir string
	WorkDir  string
	// Exe is the worker binary; default the current executable (the caller
	// re-execs itself, with Launch detecting the worker role — see Launch).
	// Args are the arguments the worker is started with; nil means the
	// current process's arguments, so the worker re-parses the same flags.
	// Use Args: []string{} for no arguments.
	Exe  string
	Args []string
	// DetectorTimeout is the workers' heartbeat suspicion timeout; default
	// 2 s. Stderr receives rank-prefixed worker stderr (default os.Stderr);
	// Verbose additionally logs spawn/exit events there.
	DetectorTimeout time.Duration
	Stderr          io.Writer
	Verbose         bool
}

// WithDistributed selects the TCP/process substrate.
func WithDistributed(d Distributed) Option {
	return func(s *Spec) { s.distributed = &d }
}

// WithWholeWorldRestart disables localized recovery, restoring the
// pre-localized whole-world behaviour: after a death every rank re-reads
// its checkpoint from the stable store (instead of survivors rolling back
// from their in-memory retained copy), and on the distributed substrate
// the launcher tears down the surviving worker processes and re-execs the
// entire incarnation instead of respawning only the dead ranks. Kept as a
// fallback and for A/B measurement of recovery cost; recovery semantics
// (which epoch is restored, the recovered output) are identical either
// way.
func WithWholeWorldRestart() Option {
	return func(s *Spec) { s.cfg.WholeWorldRestart = true }
}

// WithMetricsAddr exposes the run's live counters at
// http://<addr>/metrics in Prometheus text exposition format for the
// duration of the Launch, on either substrate (on the distributed
// substrate the launcher process serves the aggregated view; workers
// stream their counters to it). Use ":0" to bind a free port. See the
// README's "Operating ccift" section for the exported series.
func WithMetricsAddr(addr string) Option {
	return func(s *Spec) { s.metricsAddr = addr }
}

// Validate reports the first configuration error in the spec; every error
// it returns matches ErrSpec via errors.Is. Launch calls it, so explicit
// use is only needed to check a spec without running it.
func (s *Spec) Validate() error {
	if err := s.cfg.Validate(); err != nil {
		return err
	}
	if s.sim != nil {
		if s.distributed != nil {
			return fmt.Errorf("%w: WithSimulated and WithDistributed are mutually exclusive: a run uses one substrate", cerr.ErrSpec)
		}
		if s.cfg.NewTransport != nil {
			return fmt.Errorf("%w: WithTransport and WithSimulated are mutually exclusive: the simulated substrate brings its own transport", cerr.ErrSpec)
		}
		if err := s.sim.Validate(s.cfg.Ranks); err != nil {
			// Validate's errors already carry cerr.ErrSpec.
			return fmt.Errorf("simulated scenario: %w", err)
		}
	}
	if d := s.distributed; d != nil {
		if s.cfg.Store != nil {
			return fmt.Errorf("%w: WithStore supplies an in-process store, which no worker process can reach; "+
				"distributed runs share checkpoints through Distributed.StoreDir", cerr.ErrSpec)
		}
		if s.cfg.Mode != protocol.Full {
			return fmt.Errorf("%w: distributed runs recover from shared checkpoints and require Full mode, got %v "+
				"(the in-process substrate runs any mode)", cerr.ErrSpec, s.cfg.Mode)
		}
		if s.cfg.Tracer != nil {
			return fmt.Errorf("%w: WithTracer is in-process only: the recorder cannot observe worker processes", cerr.ErrSpec)
		}
		if s.cfg.NewTransport != nil {
			return fmt.Errorf("%w: WithTransport and WithDistributed are mutually exclusive: the distributed substrate brings its own TCP transport", cerr.ErrSpec)
		}
		if s.cfg.ChaosSeed != 0 {
			return fmt.Errorf("%w: WithChaos is in-process only: a real network's interleaving cannot be seeded", cerr.ErrSpec)
		}
		if s.cfg.DetectorTimeout != 0 {
			return fmt.Errorf("%w: WithDetectorTimeout is in-process only; set Distributed.DetectorTimeout for worker heartbeats", cerr.ErrSpec)
		}
	}
	return nil
}
