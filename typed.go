package ccift

import (
	"encoding/binary"
	"fmt"
	"math"

	"ccift/internal/mpi"
)

// Typed messaging and state. These generic front ends subsume the
// SendF64/RecvF64 method pairs: one function per direction for every
// fixed-width element type, and — on the send side — one payload copy
// instead of two. SendF64 packs into a wire buffer (copy one) and the
// substrate defensively copies again (copy two); Send encodes into a fresh
// buffer and hands its ownership to the substrate, so the encode is the
// only copy. The wire format is the same little-endian packing F64Bytes
// produces, so typed and untyped ranks interoperate.

// Element enumerates the fixed-width element types the typed messaging
// front end can put on the wire.
type Element interface {
	byte | int16 | uint16 | int32 | uint32 | int64 | uint64 | float32 | float64
}

// Send sends a vector of fixed-width elements to dst with the given tag.
func Send[T Element](r *Rank, dst, tag int, xs []T) {
	r.SendOwned(dst, tag, packElems(xs))
}

// Recv receives a vector of fixed-width elements matching (src, tag); src
// may be AnySource and tag AnyTag. It panics if the payload length is not
// a multiple of the element size — i.e. the sender used a different type.
func Recv[T Element](r *Rank, src, tag int) []T {
	return unpackElems[T](r.Recv(src, tag).Data)
}

// Element64 is the subset of Element the built-in reduction operators can
// combine: every Op works on packed 8-byte lanes, so reducing a narrower
// element type would silently reinterpret pairs of values as one lane.
type Element64 interface {
	int64 | uint64 | float64
}

// Allreduce combines element vectors across all ranks with op. T is
// restricted to 8-byte elements because the built-in Ops combine 8-byte
// lanes (SumF64, MaxI64, ...).
func Allreduce[T Element64](r *Rank, xs []T, op Op) []T {
	return unpackElems[T](r.Allreduce(packElems[T](xs), op))
}

// Reg registers a new zero-valued variable of type T under name and
// returns a pointer to it: the value is saved with every checkpoint and —
// through the same VDS machinery Register uses — restored into the
// returned pointer when a restarted incarnation re-executes the Reg call.
// T must be a codec-supported type (numeric scalars and slices, strings,
// maps and structs of those).
func Reg[T any](r *Rank, name string) *T {
	p := new(T)
	r.Register(name, p)
	return p
}

// elemSize reports the wire size of one element of type T.
func elemSize[T Element]() int {
	var z T
	switch any(z).(type) {
	case byte:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// packElems encodes xs into a fresh little-endian wire buffer.
func packElems[T Element](xs []T) []byte {
	switch v := any(xs).(type) {
	case []byte:
		out := make([]byte, len(v))
		copy(out, v)
		return out
	case []float64:
		return mpi.F64Bytes(v)
	case []int64:
		return mpi.I64Bytes(v)
	case []uint64:
		out := make([]byte, 8*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint64(out[8*i:], x)
		}
		return out
	case []float32:
		out := make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
		}
		return out
	case []int32:
		out := make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
		}
		return out
	case []uint32:
		out := make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(out[4*i:], x)
		}
		return out
	case []int16:
		out := make([]byte, 2*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint16(out[2*i:], uint16(x))
		}
		return out
	case []uint16:
		out := make([]byte, 2*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint16(out[2*i:], x)
		}
		return out
	}
	panic("ccift: unreachable element type") // Element is exhaustive above
}

// unpackElems decodes a wire payload into a fresh element vector.
func unpackElems[T Element](b []byte) []T {
	size := elemSize[T]()
	if len(b)%size != 0 {
		var z T
		panic(fmt.Sprintf("ccift: typed receive of %T: payload length %d is not a multiple of the element size %d (sender used a different type?)",
			z, len(b), size))
	}
	n := len(b) / size
	out := make([]T, n)
	switch v := any(out).(type) {
	case []byte:
		copy(v, b)
	case []float64:
		mpi.BytesF64Into(v, b)
	case []int64:
		for i := range v {
			v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case []uint64:
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
	case []float32:
		for i := range v {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}
	case []int32:
		for i := range v {
			v[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	case []uint32:
		for i := range v {
			v[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
	case []int16:
		for i := range v {
			v[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
		}
	case []uint16:
		for i := range v {
			v[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
	}
	return out
}
