module ccift

go 1.22
