// Package ccift is a Go reproduction of the C3 system from "Automated
// Application-level Checkpointing of MPI Programs" (Bronevetsky, Marques,
// Pingali, Stodghill; PPoPP 2003): application-level, coordinated,
// non-blocking checkpointing for message-passing programs.
//
// A program is a function executed by every rank. It communicates only
// through its Rank, registers its recoverable state, and calls
// PotentialCheckpoint wherever a checkpoint may be taken:
//
//	prog := func(r *ccift.Rank) (any, error) {
//		it := ccift.Reg[int](r, "it")
//		x := ccift.Reg[[]float64](r, "x")
//		if !r.Restarting() {
//			*x = make([]float64, 1024)
//		}
//		for ; *it < 1000; *it++ {
//			r.PotentialCheckpoint()
//			// exchange with ccift.Send / ccift.Recv, compute …
//		}
//		return (*x)[0], nil
//	}
//	res, err := ccift.Launch(ctx, ccift.NewSpec(
//		ccift.WithRanks(16), ccift.WithMode(ccift.Full),
//		ccift.WithInterval(30*time.Second)), prog)
//
// Launch is the single entry point for every substrate. By default the
// ranks run as goroutines over an in-process MPI-like substrate; with
// WithDistributed the identical program runs as one OS process per rank
// over a TCP mesh, with checkpoints in a shared on-disk store and failures
// delivered as real SIGKILLs. Either way the system drives the paper's
// coordination protocol (epochs, piggybacked control information,
// late-message and non-determinism logs, early-send suppression), injects
// any configured stopping failures, and transparently rolls the
// computation back to the last committed global checkpoint until the
// program completes. The run can be cancelled or deadlined through ctx and
// fails with a structured *RunError.
//
// Programs may be written directly against this API (registering state and
// looping on a registered counter, as above), or written as plain code and
// instrumented by the cmd/ccift precompiler, which inserts Position Stack
// and Variable Descriptor Stack bookkeeping so that checkpoints may sit
// anywhere in the call tree.
//
// Run(Config, prog) is the v0 entry point, kept as a thin compatibility
// shim over the same engine; see the README's MIGRATION section for the
// Config-field-to-option mapping and the shim's deprecation path.
package ccift

import (
	"ccift/internal/engine"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// Rank is a process's handle on the system: MPI-style point-to-point and
// collective communication, checkpoint opportunities, state registration,
// and logged non-determinism. See engine.Rank for the full method set.
type Rank = engine.Rank

// Program is the application entry point executed by every rank.
type Program = engine.Program

// Config configures a run. Zero values select sensible defaults: in-memory
// stable storage, no checkpoint trigger, no failures.
type Config = engine.Config

// Failure schedules a stopping failure for fault-injection runs: the given
// rank dies at its AtOp-th substrate operation of the given incarnation.
type Failure = engine.Failure

// Result reports a completed run: per-rank return values, the number of
// rollback-restarts performed, and protocol statistics.
type Result = engine.Result

// Stats aggregates one rank's protocol-layer counters: messages and bytes
// sent, piggyback and control overhead, log volume, checkpoints taken.
type Stats = protocol.Stats

// RankStats pins one rank's final counters together with the incarnation
// that produced them; Result.PerRank holds one per rank on both
// substrates.
type RankStats = protocol.RankStats

// Mode selects how much of the system is active — the four program
// versions measured in the paper's Figure 8.
type Mode = protocol.Mode

// The four Figure 8 program versions.
const (
	// Unmodified bypasses the protocol layer entirely.
	Unmodified = protocol.Unmodified
	// PiggybackOnly attaches piggybacks and control collectives but never
	// takes checkpoints.
	PiggybackOnly = protocol.PiggybackOnly
	// NoAppState runs the full protocol but skips application state.
	NoAppState = protocol.NoAppState
	// Full takes complete checkpoints and recovers from failures.
	Full = protocol.Full
)

// Wildcards for Recv.
const (
	// AnySource matches a message from any rank.
	AnySource = mpi.AnySource
	// AnyTag matches a message with any tag.
	AnyTag = mpi.AnyTag
)

// Run executes prog on cfg.Ranks ranks, rolling back and restarting from
// the last committed global checkpoint whenever a rank stop-fails, until
// the program completes on every rank.
//
// Run is the v0 entry point, retained as a compatibility shim: it is
// Launch with a background context, the in-process substrate, and the
// Config fields mapped onto their spec options. New code should call
// Launch, which adds cancellation, substrate selection, and structured
// errors; Run will be removed in v2.
func Run(cfg Config, prog Program) (*Result, error) {
	return engine.Run(cfg, prog)
}

// Stable is the stable-storage interface checkpoints are written to.
type Stable = storage.Stable

// NewMemoryStore returns an in-memory stable store (tests, benchmarks).
func NewMemoryStore() *storage.Memory { return storage.NewMemory() }

// NewDiskStore returns an on-disk stable store rooted at dir.
func NewDiskStore(dir string) (*storage.Disk, error) { return storage.NewDisk(dir) }

// NewThrottledStore wraps a store with a write-bandwidth throttle,
// modelling the paper's 40 MB/s local checkpoint disks.
func NewThrottledStore(inner Stable, bytesPerSecond float64) *storage.Throttled {
	return storage.NewThrottled(inner, bytesPerSecond)
}

// Op combines reduction payloads; used with Allreduce and Reduce.
type Op = mpi.Op

// Built-in reduction operators over packed []float64 / []int64 payloads.
var (
	// SumF64 adds float64 vectors elementwise.
	SumF64 = mpi.SumF64
	// MaxF64 takes the elementwise float64 maximum.
	MaxF64 = mpi.MaxF64
	// MinF64 takes the elementwise float64 minimum.
	MinF64 = mpi.MinF64
	// SumI64 adds int64 vectors elementwise.
	SumI64 = mpi.SumI64
	// MaxI64 takes the elementwise int64 maximum.
	MaxI64 = mpi.MaxI64
	// MinI64 takes the elementwise int64 minimum.
	MinI64 = mpi.MinI64
)

// F64Bytes packs a float64 slice into the wire format used by Send and the
// collectives.
func F64Bytes(xs []float64) []byte { return mpi.F64Bytes(xs) }

// BytesF64 unpacks a wire payload into a float64 slice.
func BytesF64(b []byte) []float64 { return mpi.BytesF64(b) }

// CommHandle names a communicator owned by the protocol layer; handles are
// restored on recovery by persistent-object call replay.
type CommHandle = protocol.CommHandle

// WorldComm is the world communicator's handle.
const WorldComm = protocol.WorldComm
