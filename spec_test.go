package ccift_test

// Table-driven validation of the v1 spec (and, through the shim, the v0
// Config): misconfigurations that used to panic or hang deep inside a run
// must surface as descriptive errors at the API boundary.

import (
	"context"
	"strings"
	"testing"
	"time"

	"ccift"
)

func TestSpecValidation(t *testing.T) {
	dist := ccift.Distributed{}
	cases := []struct {
		name string
		opts []ccift.Option
		want string // substring of the error; "" means the spec is valid
	}{
		{"defaults", nil, ""},
		{"valid-full", []ccift.Option{ccift.WithRanks(4), ccift.WithMode(ccift.Full), ccift.WithEveryN(5)}, ""},
		{"valid-interval", []ccift.Option{ccift.WithRanks(2), ccift.WithInterval(time.Second)}, ""},
		{"valid-distributed", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full), ccift.WithDistributed(dist)}, ""},

		{"zero-ranks", []ccift.Option{ccift.WithRanks(0)}, "Ranks must be positive"},
		{"negative-ranks", []ccift.Option{ccift.WithRanks(-3)}, "Ranks must be positive"},
		{"negative-max-restarts", []ccift.Option{ccift.WithRanks(2), ccift.WithMaxRestarts(-1)}, "MaxRestarts"},
		{"negative-everyn", []ccift.Option{ccift.WithRanks(2), ccift.WithEveryN(-1)}, "EveryN"},
		{"negative-interval", []ccift.Option{ccift.WithRanks(2), ccift.WithInterval(-time.Second)}, "Interval"},
		{"conflicting-triggers", []ccift.Option{ccift.WithRanks(2), ccift.WithEveryN(5), ccift.WithInterval(time.Second)},
			"mutually exclusive"},
		{"failure-rank-out-of-range", []ccift.Option{ccift.WithRanks(2),
			ccift.WithFailures(ccift.Failure{Rank: 2, AtOp: 10})}, "out of range"},
		{"failure-negative-rank", []ccift.Option{ccift.WithRanks(2),
			ccift.WithFailures(ccift.Failure{Rank: -1, AtOp: 10})}, "out of range"},
		{"failure-zero-op", []ccift.Option{ccift.WithRanks(2),
			ccift.WithFailures(ccift.Failure{Rank: 0, AtOp: 0})}, "AtOp must be positive"},
		{"failure-negative-incarnation", []ccift.Option{ccift.WithRanks(2),
			ccift.WithFailures(ccift.Failure{Rank: 0, AtOp: 5, Incarnation: -1})}, "Incarnation"},

		{"distributed-with-inprocess-store", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full),
			ccift.WithStore(ccift.NewMemoryStore()), ccift.WithDistributed(dist)}, "StoreDir"},
		{"distributed-without-full", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.NoAppState),
			ccift.WithDistributed(dist)}, "require Full mode"},
		{"distributed-with-tracer", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full),
			ccift.WithTracer(nopTracer{}), ccift.WithDistributed(dist)}, "in-process only"},
		{"distributed-with-chaos", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full),
			ccift.WithChaos(7, false), ccift.WithDistributed(dist)}, "in-process only"},
		{"distributed-with-transport", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full),
			ccift.WithTransport(func(w *ccift.World) ccift.Transport { return nil }), ccift.WithDistributed(dist)},
			"mutually exclusive"},
		{"distributed-with-detector-timeout", []ccift.Option{ccift.WithRanks(2), ccift.WithMode(ccift.Full),
			ccift.WithDetectorTimeout(time.Second), ccift.WithDistributed(dist)}, "Distributed.DetectorTimeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ccift.NewSpec(tc.opts...).Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want an error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestLaunchValidatesBeforeRunning pins that Launch rejects a bad spec
// without starting any rank.
func TestLaunchValidatesBeforeRunning(t *testing.T) {
	ran := false
	_, err := ccift.Launch(context.Background(), ccift.NewSpec(ccift.WithRanks(-1)),
		func(r *ccift.Rank) (any, error) { ran = true; return nil, nil })
	if err == nil || !strings.Contains(err.Error(), "Ranks must be positive") {
		t.Fatalf("err = %v, want a Ranks validation error", err)
	}
	if ran {
		t.Fatal("program ran under an invalid spec")
	}
}

// TestRunShimValidates pins that the v0 shim inherits the same boundary
// validation instead of the old deep-in-the-engine panic.
func TestRunShimValidates(t *testing.T) {
	_, err := ccift.Run(ccift.Config{Ranks: 2, EveryN: 3, Interval: time.Second},
		func(r *ccift.Rank) (any, error) { return nil, nil })
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want the conflicting-trigger error", err)
	}
}

// nopTracer is the least tracer that satisfies the interface.
type nopTracer struct{}

func (nopTracer) Trace(ccift.TraceEvent) {}
