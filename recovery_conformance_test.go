package ccift_test

// Cross-substrate recovery conformance: the same program with the same
// single-death failure schedule, launched through the identical public
// Launch call, must recover to the same output on all three substrates —
// in-process goroutines, the deterministic simulation, and one OS process
// per rank over TCP. On the distributed substrate the test additionally
// pins the localized-recovery process contract: a single death respawns
// only the dead rank (survivor PIDs are stable across incarnations), and
// WithWholeWorldRestart restores the historical re-exec-everyone fallback.

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"ccift"
)

// launchRecovery runs conformanceProg with rank 2 killed at its op 150 on
// the named substrate. The kill schedule, trigger, and world shape are
// identical everywhere; the substrate option is the only difference.
func launchRecovery(t *testing.T, substrate string, extra ...ccift.Option) *ccift.Result {
	t.Helper()
	opts := []ccift.Option{
		ccift.WithRanks(confRanks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(confEveryN),
		ccift.WithFailures(ccift.Failure{Rank: 2, AtOp: 150, Incarnation: 0}),
	}
	switch substrate {
	case "inprocess":
	case "simulated":
		opts = append(opts, ccift.WithSimulated(ccift.Scenario{
			Seed:            7,
			Latency:         time.Millisecond,
			DetectorTimeout: 25 * time.Millisecond,
		}))
	case "distributed":
		opts = append(opts, ccift.WithDistributed(ccift.Distributed{Stderr: io.Discard}))
	default:
		t.Fatalf("unknown substrate %q", substrate)
	}
	opts = append(opts, extra...)
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(opts...), conformanceProg())
	if err != nil {
		t.Fatalf("Launch(%s): %v", substrate, err)
	}
	if res.Restarts != 1 {
		t.Fatalf("%s: %d restarts, want exactly 1 for a single death", substrate, res.Restarts)
	}
	return res
}

func TestRecoveryConformanceAcrossSubstrates(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two incarnations of real processes; the fault-free conformance test covers -short")
	}
	ref := launchBoth(t, false)
	want := fmt.Sprint(ref.Values[0])

	inproc := launchRecovery(t, "inprocess")
	if got := fmt.Sprint(inproc.Values[0]); got != want {
		t.Fatalf("in-process recovered result %q != fault-free %q", got, want)
	}
	// Localized recovery is the default: when a committed checkpoint was
	// restored, the survivors must have served it from their in-memory
	// retained copy, not the store; the dead rank's replacement has no
	// retained copy and reads the store.
	if len(inproc.RecoveredEpochs) == 1 && inproc.RecoveredEpochs[0] >= 1 {
		for _, r := range []int{0, 1, 3} {
			if inproc.Stats[r].RecoveredFromRetained == 0 {
				t.Errorf("in-process survivor rank %d restored from the store; localized recovery must use the retained copy", r)
			}
		}
		if inproc.Stats[2].RecoveredFromRetained != 0 {
			t.Errorf("restarted rank 2 claims a retained restore; a fresh rank has nothing retained")
		}
	}

	sim := launchRecovery(t, "simulated")
	if got := fmt.Sprint(sim.Values[0]); got != want {
		t.Fatalf("simulated recovered result %q != fault-free %q", got, want)
	}

	dist := launchRecovery(t, "distributed")
	if got := fmt.Sprint(dist.Values[0]); got != want {
		t.Fatalf("distributed recovered result %q != fault-free %q", got, want)
	}
	// The localized process contract: exactly one restart means two
	// incarnations; the survivors' worker processes carry over (stable
	// PIDs, no exit recorded in the incarnation they survived) and only
	// the killed rank is a fresh process.
	if len(dist.Incarnations) != 2 {
		t.Fatalf("distributed run reports %d incarnations, want 2", len(dist.Incarnations))
	}
	for _, r := range []int{0, 1, 3} {
		if p0, p1 := dist.Incarnations[0].PIDs[r], dist.Incarnations[1].PIDs[r]; p0 != p1 {
			t.Errorf("survivor rank %d was re-execed (pid %d -> %d); localized recovery restarts only dead ranks", r, p0, p1)
		}
		if e := dist.Incarnations[0].Exits[r]; e != "" {
			t.Errorf("survivor rank %d exited %q mid-job; localized recovery keeps survivors alive", r, e)
		}
	}
	if p0, p1 := dist.Incarnations[0].PIDs[2], dist.Incarnations[1].PIDs[2]; p0 == p1 {
		t.Errorf("killed rank 2 kept pid %d; a SIGKILLed rank must be re-execed", p0)
	}
}

func TestRecoveryConformanceWholeWorldFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two incarnations of real processes; the fault-free conformance test covers -short")
	}
	ref := launchBoth(t, false)
	want := fmt.Sprint(ref.Values[0])

	// WithWholeWorldRestart must not change recovery semantics, only cost:
	// same output, but every rank re-reads the store and (distributed)
	// every process is re-execed.
	inproc := launchRecovery(t, "inprocess", ccift.WithWholeWorldRestart())
	if got := fmt.Sprint(inproc.Values[0]); got != want {
		t.Fatalf("whole-world in-process result %q != fault-free %q", got, want)
	}
	for r := range inproc.Stats {
		if n := inproc.Stats[r].RecoveredFromRetained; n != 0 {
			t.Errorf("rank %d: %d retained restores under WithWholeWorldRestart, want 0", r, n)
		}
	}

	dist := launchRecovery(t, "distributed", ccift.WithWholeWorldRestart())
	if got := fmt.Sprint(dist.Values[0]); got != want {
		t.Fatalf("whole-world distributed result %q != fault-free %q", got, want)
	}
	if len(dist.Incarnations) != 2 {
		t.Fatalf("distributed run reports %d incarnations, want 2", len(dist.Incarnations))
	}
	for r := 0; r < confRanks; r++ {
		if p0, p1 := dist.Incarnations[0].PIDs[r], dist.Incarnations[1].PIDs[r]; p0 == p1 {
			t.Errorf("rank %d kept pid %d across a whole-world restart; every rank must be re-execed", r, p0)
		}
	}
}
