package ccift_test

// Scenario-fuzz recovery: seeded random fault schedules — crash bursts,
// crashes during recovery, crashes of freshly-respawned ranks — run on the
// simulated substrate, where the whole schedule is a pure function of the
// seed. Every schedule must end in one of exactly two ways: output
// byte-identical to the fault-free run, or (when the schedule exhausts the
// restart budget) a failure matching exactly one public ccift.Err*
// sentinel. Any failure names the seed to replay with CCIFT_TEST_SEED.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ccift"
	"ccift/internal/testseed"
)

// fuzzSchedule derives one random fault schedule from its seed: between 1
// and 4 crashes whose shapes deliberately cover the nasty cases —
// simultaneous bursts (co-dying ranks must cost one rollback), a second
// crash close on the heels of the first (crash during recovery), and
// repeat crashes of the same rank (a freshly-respawned rank dying again).
func fuzzSchedule(seed int64, ranks int) []ccift.Crash {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(4)
	var crashes []ccift.Crash
	at := 40*time.Millisecond + time.Duration(rng.Intn(60))*time.Millisecond
	victim := rng.Intn(ranks)
	for i := 0; i < n; i++ {
		crashes = append(crashes, ccift.Crash{Rank: victim, At: at})
		switch rng.Intn(3) {
		case 0: // burst: another rank dies (virtually) simultaneously
			victim = rng.Intn(ranks)
			at += time.Duration(rng.Intn(3)) * time.Millisecond
		case 1: // crash during recovery: a different rank, just after
			victim = rng.Intn(ranks)
			at += 20*time.Millisecond + time.Duration(rng.Intn(40))*time.Millisecond
		case 2: // the respawned rank itself dies again
			at += 30*time.Millisecond + time.Duration(rng.Intn(60))*time.Millisecond
		}
	}
	// Two crashes of one rank at the same virtual instant collapse into
	// one death; keep them distinct so the schedule's intent survives.
	seen := map[ccift.Crash]bool{}
	out := crashes[:0]
	for _, c := range crashes {
		for seen[c] {
			c.At += time.Millisecond
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

func TestFuzzRecoverySchedules(t *testing.T) {
	const (
		ranks     = 6
		iters     = 40
		width     = 8
		schedules = 24
	)
	base := testseed.Base(t, 9100)
	ref := soakRef(t, ranks, iters, width)

	n := schedules
	if testing.Short() {
		n = 6
	}
	if testseed.Replaying() {
		n = 1 // the overridden seed is the whole run
	}
	recovered, exhausted := 0, 0
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		crashes := fuzzSchedule(seed, ranks)
		sc := ccift.Scenario{
			Seed:            seed,
			Latency:         time.Millisecond,
			Jitter:          500 * time.Microsecond,
			DetectorTimeout: 25 * time.Millisecond,
			Crashes:         crashes,
		}
		// A budget the denser schedules can exhaust: exhaustion is a
		// legitimate outcome, but it must surface as the one right error.
		res, err := ccift.Launch(context.Background(), ccift.NewSpec(
			ccift.WithRanks(ranks), ccift.WithMode(ccift.Full),
			ccift.WithEveryN(6), ccift.WithDebug(),
			ccift.WithMaxRestarts(3),
			ccift.WithSimulated(sc),
		), stencil(iters, width))
		if err != nil {
			if !errors.Is(err, ccift.ErrMaxRestarts) {
				t.Fatalf("seed %d (replay with %s=%d): schedule %v failed with %v, want success or ErrMaxRestarts",
					seed, testseed.Env, seed, crashes, err)
			}
			assertExactlyOne(t, err, ccift.ErrMaxRestarts)
			exhausted++
			continue
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("seed %d (replay with %s=%d): schedule %v diverged from the fault-free reference:\n  got %v\n  ref %v",
				seed, testseed.Env, seed, crashes, res.Values, ref)
		}
		recovered++
	}
	t.Logf("%d schedules recovered to the reference output, %d exhausted the restart budget cleanly", recovered, exhausted)
}
