package ccift_test

import (
	"fmt"
	"reflect"
	"testing"

	"ccift"
)

// stencil is a small neighbour-averaging program used to exercise the
// public API exactly as a downstream user would.
func stencil(iters, width int) ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		n := r.Size()
		me := r.Rank()
		next, prev := (me+1)%n, (me-1+n)%n

		var it int
		x := make([]float64, width)
		r.Register("it", &it)
		r.Register("x", &x)
		if !r.Restarting() {
			for i := range x {
				x[i] = float64(me*width + i)
			}
		}
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			r.SendF64(next, 1, x)
			in := r.RecvF64(prev, 1)
			for i := range x {
				x[i] = (x[i] + in[i]) / 2
			}
			norm := r.AllreduceF64([]float64{x[0]}, ccift.SumF64)
			x[0] = norm[0] / float64(n)
			r.Touch("x")
		}
		total := r.AllreduceF64([]float64{x[0] + x[width-1]}, ccift.SumF64)
		return fmt.Sprintf("%.9f", total[0]), nil
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	res, err := ccift.Run(ccift.Config{Ranks: 4, Mode: ccift.Full, EveryN: 5}, stencil(15, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("values = %v", res.Values)
	}
	for r := 1; r < 4; r++ {
		if res.Values[r] != res.Values[0] {
			t.Fatalf("ranks disagree: %v", res.Values)
		}
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	prog := stencil(20, 8)
	ref, err := ccift.Run(ccift.Config{Ranks: 3, Mode: ccift.Unmodified}, prog)
	if err != nil {
		t.Fatal(err)
	}
	store := ccift.NewMemoryStore()
	cfg := ccift.Config{
		Ranks: 3, Mode: ccift.Full, EveryN: 4, Store: store,
		Failures: []ccift.Failure{{Rank: 1, AtOp: 120, Incarnation: 0}},
	}
	res, err := ccift.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref.Values) {
		t.Fatalf("recovered values %v != ref %v", res.Values, ref.Values)
	}
}

func TestPublicAPIDiskStore(t *testing.T) {
	store, err := ccift.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ccift.Config{
		Ranks: 2, Mode: ccift.Full, EveryN: 3, Store: store,
		Failures: []ccift.Failure{{Rank: 0, AtOp: 80, Incarnation: 0}},
	}
	prog := stencil(12, 4)
	ref, err := ccift.Run(ccift.Config{Ranks: 2, Mode: ccift.Unmodified}, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccift.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, ref.Values) {
		t.Fatalf("disk-backed recovery diverged: %v != %v", res.Values, ref.Values)
	}
}

func TestPackUnpackHelpers(t *testing.T) {
	xs := []float64{1.5, -2.25, 1e300, 0}
	got := ccift.BytesF64(ccift.F64Bytes(xs))
	if !reflect.DeepEqual(got, xs) {
		t.Fatalf("round trip %v != %v", got, xs)
	}
}

// ExampleRun demonstrates the quickstart flow on two ranks.
func ExampleRun() {
	prog := func(r *ccift.Rank) (any, error) {
		var it int
		var sum float64
		r.Register("it", &it)
		r.Register("sum", &sum)
		for ; it < 4; it++ {
			r.PotentialCheckpoint()
			part := r.AllreduceF64([]float64{float64(r.Rank() + 1)}, ccift.SumF64)
			sum += part[0]
		}
		return sum, nil
	}
	res, err := ccift.Run(ccift.Config{Ranks: 2, Mode: ccift.Full, EveryN: 2}, prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values[0])
	// Output: 12
}
