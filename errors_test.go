package ccift_test

// The error-taxonomy contract: every error escaping Launch matches
// EXACTLY one ccift.Err* sentinel via errors.Is, and the same failure
// mode reports the same category on both substrates. The matrix below
// drives every reachable failure mode through the public Launch call;
// distributed cases re-exec this test binary as real worker processes
// (see TestMain in launch_v1_test.go).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ccift"
)

// taxonomy is the complete public sentinel set; the exactly-one assertion
// walks it, so a future sentinel added here is automatically covered.
var taxonomy = map[string]error{
	"ErrCanceled":    ccift.ErrCanceled,
	"ErrWorldDead":   ccift.ErrWorldDead,
	"ErrMaxRestarts": ccift.ErrMaxRestarts,
	"ErrSpec":        ccift.ErrSpec,
	"ErrStore":       ccift.ErrStore,
	"ErrTransport":   ccift.ErrTransport,
	"ErrProgram":     ccift.ErrProgram,
}

func assertExactlyOne(t *testing.T, err, want error) {
	t.Helper()
	if err == nil {
		t.Fatal("Launch succeeded, want a categorized failure")
	}
	var matched []string
	for name, s := range taxonomy {
		if errors.Is(err, s) {
			matched = append(matched, name)
		}
	}
	if len(matched) != 1 {
		t.Fatalf("err %q matches %v, want exactly one sentinel", err, matched)
	}
	if !errors.Is(err, want) {
		t.Fatalf("err %q matched %v, want the %v category", err, matched, want)
	}
}

// brokenStore fails every write — the in-process store-failure injection.
type brokenStore struct{ ccift.Stable }

func (brokenStore) Put(key string, data []byte) error {
	return fmt.Errorf("injected write failure for %s", key)
}

func TestErrorTaxonomyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("the distributed rows spawn real worker processes")
	}
	base := func(extra ...ccift.Option) []ccift.Option {
		return append([]ccift.Option{
			ccift.WithRanks(confRanks),
			ccift.WithMode(ccift.Full),
			ccift.WithEveryN(confEveryN),
		}, extra...)
	}
	// A StoreDir nested under a regular file cannot be created: the
	// distributed substrate's store failure.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	exhaustKills := []ccift.Failure{
		{Rank: 1, AtOp: 60, Incarnation: 0},
		{Rank: 1, AtOp: 60, Incarnation: 1},
	}

	cases := []struct {
		name string
		opts []ccift.Option
		// workerProg selects the re-exec'd workers' program via progEnv
		// ("" = the conformance program); the in-process run uses the
		// same program directly.
		workerProg string
		ctx        func() context.Context
		want       error
		// substrates: by default a case runs on both; inprocOnly marks
		// failure modes the distributed substrate cannot reach (world
		// death needs a checkpoint-free mode, which distributed specs
		// reject), distOnly ones that need real processes.
		inprocOnly bool
		distOnly   bool
	}{
		{
			name: "bad spec",
			opts: base(ccift.WithRanks(-3)),
			want: ccift.ErrSpec,
		},
		{
			name:     "conflicting spec options",
			opts:     base(ccift.WithChaos(7, false)),
			want:     ccift.ErrSpec,
			distOnly: true, // WithChaos is valid in-process; the conflict is with WithDistributed
		},
		{
			name: "canceled before start",
			opts: base(),
			ctx: func() context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			want: ccift.ErrCanceled,
		},
		{
			name:       "deadline mid-run",
			opts:       base(),
			workerProg: "hang",
			ctx: func() context.Context {
				ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
				_ = cancel // the run's end releases it; the deadline does the cancelling
				return ctx
			},
			want: ccift.ErrCanceled,
		},
		{
			name: "world death without recoverable checkpoints",
			opts: []ccift.Option{
				ccift.WithRanks(confRanks),
				// NoAppState commits checkpoints that hold no application
				// state, so the rollback after the kill finds a committed
				// epoch it cannot recover from.
				ccift.WithMode(ccift.NoAppState),
				ccift.WithEveryN(confEveryN),
				// Op 100 is comfortably past the first commit (which lands
				// around op 70 at this scale), so a checkpoint exists.
				ccift.WithFailures(ccift.Failure{Rank: 1, AtOp: 100}),
			},
			want:       ccift.ErrWorldDead,
			inprocOnly: true,
		},
		{
			name: "restart budget exhausted",
			opts: base(ccift.WithMaxRestarts(1), ccift.WithFailures(exhaustKills...)),
			want: ccift.ErrMaxRestarts,
		},
		{
			name:       "store write failure",
			opts:       base(ccift.WithStore(brokenStore{ccift.NewMemoryStore()})),
			want:       ccift.ErrStore,
			inprocOnly: true, // the distributed row injects through StoreDir below
		},
		{
			name:     "store directory unusable",
			opts:     base(),
			want:     ccift.ErrStore,
			distOnly: true,
		},
		{
			name:       "program error",
			opts:       base(),
			workerProg: "fail",
			want:       ccift.ErrProgram,
		},
		{
			name:     "worker binary unspawnable",
			opts:     base(),
			want:     ccift.ErrTransport,
			distOnly: true,
		},
	}

	for _, tc := range cases {
		run := func(t *testing.T, distributed bool) {
			opts := tc.opts
			if distributed {
				d := ccift.Distributed{Stderr: io.Discard}
				switch tc.name {
				case "store directory unusable":
					d.StoreDir = filepath.Join(notADir, "store")
				case "worker binary unspawnable":
					d.Exe = filepath.Join(t.TempDir(), "no-such-binary")
				}
				opts = append(opts, ccift.WithDistributed(d))
				// The re-exec'd workers pick their program from progEnv.
				t.Setenv(progEnv, tc.workerProg)
			}
			prog := conformanceProg()
			switch tc.workerProg {
			case "hang":
				prog = hangProg()
			case "fail":
				prog = failProg()
			}
			ctx := context.Background()
			if tc.ctx != nil {
				ctx = tc.ctx()
			}
			_, err := ccift.Launch(ctx, ccift.NewSpec(opts...), prog)
			assertExactlyOne(t, err, tc.want)
		}
		if !tc.distOnly {
			t.Run(tc.name+"/inprocess", func(t *testing.T) { run(t, false) })
		}
		if !tc.inprocOnly {
			t.Run(tc.name+"/distributed", func(t *testing.T) { run(t, true) })
		}
	}
}

// TestErrMaxRestartsCompat pins the migration promise: the historical
// ErrTooManyRestarts and the taxonomy's ErrMaxRestarts identify the same
// failures, so pre-taxonomy errors.Is checks keep working.
func TestErrMaxRestartsCompat(t *testing.T) {
	_, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(confRanks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(confEveryN),
		ccift.WithMaxRestarts(1),
		ccift.WithFailures(
			ccift.Failure{Rank: 1, AtOp: 60, Incarnation: 0},
			ccift.Failure{Rank: 1, AtOp: 60, Incarnation: 1},
		),
	), conformanceProg())
	if !errors.Is(err, ccift.ErrTooManyRestarts) {
		t.Fatalf("err %v does not match the historical ErrTooManyRestarts", err)
	}
	if !errors.Is(err, ccift.ErrMaxRestarts) {
		t.Fatalf("err %v does not match ErrMaxRestarts", err)
	}
}

// TestExitCodeMapping pins the CLI contract: one exit code per category,
// recoverable back to the sentinel.
func TestExitCodeMapping(t *testing.T) {
	codes := map[int]bool{}
	for name, s := range taxonomy {
		code := ccift.ExitCode(s)
		if code == 0 {
			t.Errorf("%s maps to exit code 0 (success)", name)
		}
		if codes[code] {
			t.Errorf("%s shares exit code %d with another category", name, code)
		}
		codes[code] = true
	}
	if got := ccift.ExitCode(nil); got != 0 {
		t.Errorf("ExitCode(nil) = %d, want 0", got)
	}
}
