package ccift_test

// BenchmarkRecoveryLatency measures what a death costs at scale on the
// simulated substrate: wall-clock time to recover and stable-store reads
// per surviving rank, swept over world size × death fraction. Localized
// recovery's contract is that both stay flat as the world grows — the
// launcher-side gather reads O(world) tiny metadata blobs once, survivors
// restore from their in-memory retained copies (zero store reads), and
// only dead ranks re-read state — so reads/survivor is O(1). The previous
// design had every rank independently scan every other rank's recovery
// metadata: O(world²) reads, which is exactly the regression
// scripts/benchguard gates against BENCH_pr10.json.
//
// Run with:
//
//	go test -bench RecoveryLatency -run '^$' -benchtime 1x .

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ccift"
	"ccift/internal/storage"
)

// countingStable counts Get calls — the store reads recovery performs.
// Has is forwarded to the inner store's fast probe so the chunk writer's
// dedup probes during forward execution don't inflate the read count.
type countingStable struct {
	storage.Stable
	gets atomic.Int64
}

func (c *countingStable) Get(key string) ([]byte, error) {
	c.gets.Add(1)
	return c.Stable.Get(key)
}

func (c *countingStable) Has(key string) (bool, error) {
	return storage.Has(c.Stable, key)
}

const benchRecoveryWidth = 8

// benchCrashAt is late enough that epoch >= 1 has committed at every
// world size (the benchmark asserts this), so the rollback is a real
// checkpoint recovery. The 1000-rank world needs a little longer: its
// deeper collectives push the first commit past 100ms of virtual time on
// some schedules.
func benchCrashAt(world int) time.Duration {
	if world >= 1000 {
		return 150 * time.Millisecond
	}
	return 100 * time.Millisecond
}

// benchRecoveryIters sizes the stencil per world so the program is still
// running well past benchCrashAt in virtual time (collectives deepen with
// the world, so bigger worlds need fewer iterations) without making the
// 1000-rank runs dominate the wall clock.
func benchRecoveryIters(world int) int {
	switch {
	case world <= 8:
		return 60
	case world <= 64:
		return 40
	case world <= 256:
		return 20
	default:
		return 6
	}
}

// runRecoveryBench launches the stencil on the simulated substrate with
// the given crash schedule and returns the result, the wall-clock
// duration, and the number of store Gets.
func runRecoveryBench(b *testing.B, world int, crashes []ccift.Crash, extra ...ccift.Option) (*ccift.Result, time.Duration, int64) {
	b.Helper()
	cs := &countingStable{Stable: storage.NewMemory()}
	opts := []ccift.Option{
		ccift.WithRanks(world), ccift.WithMode(ccift.Full), ccift.WithEveryN(2),
		ccift.WithStore(cs),
		ccift.WithSimulated(ccift.Scenario{
			Seed: 4242, Latency: time.Millisecond,
			DetectorTimeout: 25 * time.Millisecond,
			Crashes:         crashes,
		}),
	}
	opts = append(opts, extra...)
	start := time.Now()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(opts...),
		stencil(benchRecoveryIters(world), benchRecoveryWidth))
	if err != nil {
		b.Fatalf("world=%d crashes=%v: %v", world, len(crashes), err)
	}
	return res, time.Since(start), cs.gets.Load()
}

func BenchmarkRecoveryLatency(b *testing.B) {
	for _, world := range []int{8, 64, 256, 1000} {
		// The fault-free run of the same shape: its wall clock and store
		// reads are the baseline the death runs are measured against.
		var baseMs float64
		var baseGets int64
		base := func(b *testing.B) {
			_, dur, gets := runRecoveryBench(b, world, nil)
			baseMs = float64(dur.Milliseconds())
			baseGets = gets
		}

		for _, frac := range []struct {
			name   string
			deaths func(world int) int
		}{
			{"deaths=1", func(int) int { return 1 }},
			{"deaths=10%", func(w int) int { return (w + 9) / 10 }},
		} {
			b.Run(fmt.Sprintf("world=%d/%s", world, frac.name), func(b *testing.B) {
				deaths := frac.deaths(world)
				crashes := make([]ccift.Crash, deaths)
				for i := range crashes {
					// Distinct ranks dying in one burst; the burst must cost
					// one rollback round, not one per corpse.
					crashes[i] = ccift.Crash{Rank: 1 + i, At: benchCrashAt(world)}
				}
				for i := 0; i < b.N; i++ {
					base(b)
					res, dur, gets := runRecoveryBench(b, world, crashes)
					if res.Restarts != 1 {
						b.Fatalf("world=%d deaths=%d: %d restarts, want 1 (tune benchCrashAt)", world, deaths, res.Restarts)
					}
					if len(res.RecoveredEpochs) != 1 || res.RecoveredEpochs[0] < 1 {
						b.Fatalf("world=%d deaths=%d: recovered epochs %v, want a committed epoch", world, deaths, res.RecoveredEpochs)
					}
					survivors := world - deaths
					retained := 0
					for r := 0; r < world; r++ {
						if res.Stats[r].RecoveredFromRetained > 0 {
							retained++
						}
					}
					if retained != survivors {
						b.Fatalf("world=%d deaths=%d: %d retained restores, want every survivor (%d)", world, deaths, retained, survivors)
					}
					recoverMs := float64(dur.Milliseconds()) - baseMs
					if recoverMs < 0 {
						recoverMs = 0
					}
					b.ReportMetric(recoverMs, "recover-ms")
					b.ReportMetric(float64(gets-baseGets)/float64(survivors), "reads/survivor")
					b.ReportMetric(float64(gets-baseGets), "reads/recovery")
				}
			})
		}
	}
}
