package ccift_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ccift"
	"ccift/internal/testseed"
)

// The chaos soak suite: whole runs of the real program over the simulated
// substrate under seeded fault schedules. Every scenario that the protocol
// is supposed to survive must end with output byte-identical to the
// fault-free run; every scenario that is supposed to fail must fail with
// exactly one taxonomy sentinel. All network time is virtual, so the whole
// suite — partitions, 30-second-scale timeouts, multi-incarnation
// flapping — costs milliseconds of wall clock per scenario.

// soakRef computes the fault-free reference output once per program shape.
func soakRef(t *testing.T, ranks, iters, width int) []any {
	t.Helper()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(ranks), ccift.WithMode(ccift.Unmodified),
	), stencil(iters, width))
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

// launchSim runs the stencil under the scenario with checkpointing on.
func launchSim(t *testing.T, seed int64, sc ccift.Scenario, iters, width int, extra ...ccift.Option) (*ccift.Result, error) {
	t.Helper()
	sc.Seed = seed
	opts := append([]ccift.Option{
		ccift.WithRanks(4), ccift.WithMode(ccift.Full), ccift.WithEveryN(6),
		ccift.WithDebug(), ccift.WithSimulated(sc),
	}, extra...)
	return ccift.Launch(context.Background(), ccift.NewSpec(opts...), stencil(iters, width))
}

func TestChaosPartitionDuringCommit(t *testing.T) {
	// A partition opens while checkpoint rounds are in flight: control
	// messages (stoppedLogging, the commit broadcast) are held at the
	// boundary until heal. The commit protocol must stall, not corrupt:
	// output is identical to the fault-free run.
	seed := testseed.Base(t, 1001)
	ref := soakRef(t, 4, 30, 8)
	sc := ccift.Scenario{
		Latency: time.Millisecond, Jitter: 500 * time.Microsecond,
		Partitions: []ccift.Partition{
			{From: 20 * time.Millisecond, Until: 120 * time.Millisecond, Ranks: []int{2, 3}},
		},
	}
	res, err := launchSim(t, seed, sc, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("partitioned run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
}

func TestChaosFlappingPeerAcrossIncarnations(t *testing.T) {
	// The same rank crashes in two successive incarnations: it dies, the
	// detector suspects it, the world rolls back, and the restarted rank
	// dies again. Recovery must converge and the final output match the
	// fault-free run.
	seed := testseed.Base(t, 1002)
	ref := soakRef(t, 4, 60, 8)
	sc := ccift.Scenario{
		Latency:         time.Millisecond,
		DetectorTimeout: 25 * time.Millisecond,
		Crashes: []ccift.Crash{
			{Rank: 2, At: 40 * time.Millisecond},
			{Rank: 2, At: 200 * time.Millisecond},
		},
	}
	res, err := launchSim(t, seed, sc, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 2 {
		t.Fatalf("restarts = %d, want both crashes to land (tune crash times)", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("flapping run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
}

func TestChaosDuplicatedFramesWithCrash(t *testing.T) {
	// Heavy frame duplication plus jitter reordering, and a crash on top:
	// every piggybacked frame may arrive twice. Exactly-once delivery below
	// MPI semantics plus the protocol's own bookkeeping must keep the
	// output exact through recovery.
	seed := testseed.Base(t, 1003)
	ref := soakRef(t, 4, 40, 8)
	sc := ccift.Scenario{
		Latency: time.Millisecond, Jitter: 2 * time.Millisecond,
		DupProb:         0.3,
		DetectorTimeout: 25 * time.Millisecond,
		Crashes:         []ccift.Crash{{Rank: 1, At: 60 * time.Millisecond}},
	}
	res, err := launchSim(t, seed, sc, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatal("crash never landed")
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("duplicated run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
}

func TestChaosSkewedDetectorClocks(t *testing.T) {
	// Rank clocks drift against the detector's: fast and slow ranks
	// heartbeat on distorted schedules while suspicion elapses on the true
	// clock. Live ranks must never be falsely declared dead (the run would
	// burn restarts), and the genuinely crashed rank must still be caught.
	seed := testseed.Base(t, 1004)
	ref := soakRef(t, 4, 40, 8)
	sc := ccift.Scenario{
		Latency:         time.Millisecond,
		DetectorTimeout: 25 * time.Millisecond,
		Skews: map[int]ccift.Skew{
			0: {Rate: 1.5},
			1: {Rate: 0.6, Offset: 3 * time.Millisecond},
			3: {Offset: -2 * time.Millisecond, Rate: 1},
		},
		Crashes: []ccift.Crash{{Rank: 3, At: 50 * time.Millisecond}},
	}
	res, err := launchSim(t, seed, sc, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want exactly the one real crash", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("skewed run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
}

func TestChaosSlowStoreDuringFlush(t *testing.T) {
	// Stable storage crawls (virtual milliseconds per chunk operation)
	// while checkpoints are being written, and a rank dies mid-run. Slow
	// flushes delay commits; recovery must restore from whichever epoch
	// actually committed and still produce the exact output.
	seed := testseed.Base(t, 1005)
	ref := soakRef(t, 4, 40, 8)
	sc := ccift.Scenario{
		Latency:         time.Millisecond,
		DetectorTimeout: 30 * time.Millisecond,
		SlowStore:       &ccift.SlowStore{Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
		Crashes:         []ccift.Crash{{Rank: 0, At: 70 * time.Millisecond}},
	}
	res, err := launchSim(t, seed, sc, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatal("crash never landed")
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("slow-store run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
}

func TestChaosThrottledFlushCrashRecovery(t *testing.T) {
	// PR 9's flush pipeline under chaos: a hard bandwidth cap
	// (WithFlushBandwidth) meters every checkpoint write through the
	// governor's token bucket — whose sleeps elapse on the scenario's
	// VIRTUAL clock — while the store itself crawls and a rank dies with
	// throttled flushes in flight. Slow, metered flushes delay commits;
	// recovery must come from whichever epoch actually committed and
	// reproduce the fault-free output exactly. The incremental freeze
	// default is active throughout, so this also soaks dirty-region
	// capture under throttling.
	seed := testseed.Base(t, 1009)
	ref := soakRef(t, 4, 40, 8)
	sc := ccift.Scenario{
		Latency:         time.Millisecond,
		DetectorTimeout: 30 * time.Millisecond,
		SlowStore:       &ccift.SlowStore{Delay: time.Millisecond},
		Crashes:         []ccift.Crash{{Rank: 2, At: 60 * time.Millisecond}},
	}
	res, err := launchSim(t, seed, sc, 40, 8, ccift.WithFlushBandwidth(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatal("crash never landed")
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("throttled run diverged:\n  got %v\n  ref %v", res.Values, ref)
	}
	var throttled int64
	for _, s := range res.Stats {
		throttled += s.FlushThrottleNs
	}
	if throttled == 0 {
		t.Fatal("FlushThrottleNs = 0 across all ranks: the bandwidth cap never engaged")
	}

	// The same throttled world with a second crash over a one-restart
	// budget must fail with exactly one taxonomy sentinel, like every
	// other substrate failure.
	sc.Crashes = append(sc.Crashes, ccift.Crash{Rank: 2, At: 400 * time.Millisecond})
	_, err = launchSim(t, seed, sc, 40, 8,
		ccift.WithFlushBandwidth(2<<10), ccift.WithMaxRestarts(1))
	assertExactlyOne(t, err, ccift.ErrMaxRestarts)
}

func TestChaosExhaustedRestartsFailsWithOneSentinel(t *testing.T) {
	// A scenario the system is NOT supposed to survive: more crashes than
	// the restart budget. The failure must carry exactly one taxonomy
	// sentinel — ErrMaxRestarts — like every other substrate's failures.
	seed := testseed.Base(t, 1006)
	sc := ccift.Scenario{
		Latency:         time.Millisecond,
		DetectorTimeout: 25 * time.Millisecond,
		Crashes: []ccift.Crash{
			{Rank: 1, At: 30 * time.Millisecond},
			{Rank: 1, At: 150 * time.Millisecond},
		},
	}
	_, err := launchSim(t, seed, sc, 60, 8, ccift.WithMaxRestarts(1))
	assertExactlyOne(t, err, ccift.ErrMaxRestarts)
}

func TestChaosDeterministicReplay(t *testing.T) {
	// The acceptance bar for the substrate: the same seed replays the same
	// run — byte-identical Values, the same restart count, and the same
	// protocol counters. (CheckpointBytesWritten attributes shared
	// deduplicated chunks to whichever rank's goroutine stored them first,
	// which virtual time does not schedule; it is compared as a sum.)
	seed := testseed.Base(t, 1007)
	sc := ccift.Scenario{
		Latency: time.Millisecond, Jitter: time.Millisecond,
		DropProb: 0.05, DupProb: 0.1,
		DetectorTimeout: 25 * time.Millisecond,
		Crashes:         []ccift.Crash{{Rank: 3, At: 45 * time.Millisecond}},
	}
	run := func() *ccift.Result {
		res, err := launchSim(t, seed, sc, 40, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Fatalf("values diverged across identical seeds:\n  %v\n  %v", a.Values, b.Values)
	}
	if a.Restarts != b.Restarts || !reflect.DeepEqual(a.RecoveredEpochs, b.RecoveredEpochs) {
		t.Fatalf("recovery shape diverged: %d/%v vs %d/%v restarts/epochs",
			a.Restarts, a.RecoveredEpochs, b.Restarts, b.RecoveredEpochs)
	}
	as, aw := normalizeWritten(a.Stats)
	bs, bw := normalizeWritten(b.Stats)
	if !reflect.DeepEqual(as, bs) {
		t.Fatalf("protocol counters diverged:\n  %+v\n  %+v", as, bs)
	}
	if aw != bw {
		t.Fatalf("aggregate checkpoint bytes written diverged: %d vs %d", aw, bw)
	}
}

func normalizeWritten(in []ccift.Stats) ([]ccift.Stats, int64) {
	out := make([]ccift.Stats, len(in))
	var sum int64
	for i, s := range in {
		sum += s.CheckpointBytesWritten
		s.CheckpointBytesWritten = 0
		out[i] = s
	}
	return out, sum
}

func TestSimulated1000RankWorld(t *testing.T) {
	// The scale bar, raised from 512 ranks when localized recovery landed:
	// a 1000-rank world with paper-scale 30-second heartbeat suspicion runs
	// through the identical public Launch call in seconds of wall clock,
	// because every timeout and every hop of latency is virtual — and a
	// mid-run death of one rank costs one localized rollback (999
	// survivors restore from their in-memory retained copies; only the
	// dead rank's replacement reads the store), not a thousand re-reads.
	// The wall-clock bound assumes full speed; the race detector's ~8x
	// slowdown gets a proportionally larger budget so CI's recovery job
	// can soak this under -race without failing on the bound.
	if testing.Short() {
		t.Skip("wall-clock scale bar: skipped under -short")
	}
	bound := 30 * time.Second
	if raceEnabled {
		bound = 4 * time.Minute
	}
	const ranks = 1000
	seed := testseed.Base(t, 1008)
	ref := soakRef(t, ranks, 3, 4)
	start := time.Now()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(ranks), ccift.WithMode(ccift.Full), ccift.WithEveryN(2),
		ccift.WithSimulated(ccift.Scenario{
			Seed: seed, Latency: time.Millisecond,
			DetectorTimeout: 30 * time.Second,
			// At 100ms virtual, epoch 1 has committed: the rollback is a
			// genuine checkpoint recovery, not a restart from scratch.
			Crashes: []ccift.Crash{{Rank: 137, At: 100 * time.Millisecond}},
		}),
	), stencil(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > bound {
		t.Fatalf("1000-rank virtual world with one death took %v, want < %v", elapsed, bound)
	}
	if res.Restarts != 1 {
		t.Fatalf("%d restarts, want the one scheduled crash to land exactly once", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("1000-rank recovered world diverged from the fault-free reference")
	}
	// Localized recovery at scale: every survivor rolled back from its
	// retained in-memory checkpoint; only the dead rank's replacement
	// touched the store for state.
	retained := 0
	for r := 0; r < ranks; r++ {
		if res.Stats[r].RecoveredFromRetained > 0 {
			retained++
		}
	}
	if want := ranks - 1; retained != want {
		t.Fatalf("%d ranks restored from retained state, want %d (all survivors)", retained, want)
	}
}
