package ccift_test

// Context-cancellation coverage on the in-process substrate: cancel while
// ranks are blocked mid-incarnation, cancel while the run is rolling back
// through failure after failure, and deadline expiry. Every outcome must
// be a *RunError wrapping the context's error, returned promptly. (The
// TCP/process substrate's cancellation is pinned in launch_v1_test.go.)

import (
	"context"
	"errors"
	"testing"
	"time"

	"ccift"
)

func assertCanceled(t *testing.T, err error, want error) {
	t.Helper()
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want a wrap of %v", err, want)
	}
	var re *ccift.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T (%v), want *ccift.RunError", err, err)
	}
}

// launchHang starts hangProg under ctx and returns Launch's error, failing
// the test if Launch does not return within the guard window.
func launchHang(t *testing.T, ctx context.Context) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		_, err := ccift.Launch(ctx, ccift.NewSpec(
			ccift.WithRanks(3),
			ccift.WithMode(ccift.Full),
			ccift.WithEveryN(4),
		), hangProg())
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not unblock the run")
		return nil
	}
}

func TestCancelMidIncarnation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond) // let the ranks park in Recv/Barrier
		cancel()
	}()
	assertCanceled(t, launchHang(t, ctx), context.Canceled)
}

func TestDeadlineExpiry(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	assertCanceled(t, launchHang(t, ctx), context.DeadlineExceeded)
}

// TestCancelDuringRollback cancels a run that is caught in a rollback
// storm: a failure is scheduled in every incarnation, so the engine is
// either mid-incarnation or between incarnations (restoring) when the
// cancellation lands — both paths must surface ctx.Err().
func TestCancelDuringRollback(t *testing.T) {
	prog := func(r *ccift.Rank) (any, error) {
		it := ccift.Reg[int](r, "it")
		for {
			r.PotentialCheckpoint()
			r.Barrier()
			*it++
		}
	}
	var kills []ccift.Failure
	for i := 0; i < 1000; i++ {
		kills = append(kills, ccift.Failure{Rank: 1, AtOp: 30, Incarnation: i})
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ccift.Launch(ctx, ccift.NewSpec(
			ccift.WithRanks(3),
			ccift.WithMode(ccift.Full),
			ccift.WithEveryN(3),
			ccift.WithMaxRestarts(2000),
			ccift.WithFailures(kills...),
		), prog)
		errc <- err
	}()
	time.Sleep(150 * time.Millisecond) // dozens of incarnations deep by now
	cancel()
	select {
	case err := <-errc:
		assertCanceled(t, err, context.Canceled)
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the rollback loop")
	}
}

// TestCancelBeforeLaunch pins the degenerate case: an already-cancelled
// context never starts an incarnation.
func TestCancelBeforeLaunch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := ccift.Launch(ctx, ccift.NewSpec(ccift.WithRanks(2)), func(r *ccift.Rank) (any, error) {
		ran = true
		return nil, nil
	})
	assertCanceled(t, err, context.Canceled)
	if ran {
		t.Fatal("program ran under a pre-cancelled context")
	}
}

// TestRunErrorFields pins the structured report: a program error names the
// failing rank and the incarnation it failed in.
func TestRunErrorFields(t *testing.T) {
	boom := errors.New("boom")
	_, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(3), ccift.WithMode(ccift.Full), ccift.WithEveryN(4),
	), func(r *ccift.Rank) (any, error) {
		if r.Rank() == 2 {
			return nil, boom
		}
		return nil, nil
	})
	var re *ccift.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T (%v), want *ccift.RunError", err, err)
	}
	if re.Rank != 2 || re.Incarnation != 0 || re.Restarts != 0 {
		t.Fatalf("RunError = {Rank:%d Incarnation:%d Restarts:%d}, want {2 0 0}", re.Rank, re.Incarnation, re.Restarts)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost: %v", err)
	}
}
