// Conjugate Gradient under checkpointing: the paper's first benchmark,
// written against the ccift v1 API. A dense symmetric positive-definite
// system is solved with block-row distribution; the main loop's allreduce
// and allgather run through the protocol layer, and the full matrix block
// is part of every checkpoint (the paper's system saves everything too —
// state exclusion is its future work).
//
//	go run ./examples/cg -n 1024 -iters 120 -kill 3@500
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"ccift"
)

func main() {
	n := flag.Int("n", 1024, "matrix dimension")
	iters := flag.Int("iters", 120, "CG iterations")
	ranks := flag.Int("ranks", 8, "ranks")
	every := flag.Int("every", 30, "checkpoint every N iterations")
	killRank := flag.Int("kill", -1, "rank to stop-fail (-1: none)")
	killOp := flag.Int64("killop", 400, "operation index of the failure")
	short := flag.Bool("short", false, "run a reduced problem (CI)")
	flag.Parse()
	if *short {
		*n, *iters, *every = 256, 30, 10
	}

	opts := []ccift.Option{
		ccift.WithRanks(*ranks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(*every),
	}
	if *killRank >= 0 {
		opts = append(opts, ccift.WithFailures(ccift.Failure{Rank: *killRank, AtOp: *killOp}))
	}
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(opts...), cgProgram(*n, *iters))
	if err != nil {
		// errors.Is against the ccift.Err* sentinels, never the message.
		switch {
		case errors.Is(err, ccift.ErrMaxRestarts):
			fmt.Fprintln(os.Stderr, "cg: restart budget exhausted:", err)
		case errors.Is(err, ccift.ErrProgram):
			fmt.Fprintln(os.Stderr, "cg: application error:", err)
		default:
			fmt.Fprintln(os.Stderr, "cg:", err)
		}
		os.Exit(ccift.ExitCode(err))
	}
	fmt.Printf("solution checksum: %v (restarts: %d)\n", res.Values[0], res.Restarts)
	var ckpts, bytes int64
	for _, pr := range res.PerRank {
		ckpts += pr.Stats.CheckpointsTaken
		bytes += pr.Stats.CheckpointBytes
	}
	fmt.Printf("checkpoints: %d local, %.1f MB written\n", ckpts, float64(bytes)/1e6)
}

// cgProgram solves A·x = 1 for a deterministic SPD matrix.
func cgProgram(n, iters int) ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		ranks := r.Size()
		if n%ranks != 0 {
			return nil, fmt.Errorf("n=%d not divisible by %d ranks", n, ranks)
		}
		rows := n / ranks
		lo := r.Rank() * rows

		it := ccift.Reg[int](r, "it")
		a := ccift.Reg[[]float64](r, "a")
		x := ccift.Reg[[]float64](r, "x")
		res := ccift.Reg[[]float64](r, "res")
		dir := ccift.Reg[[]float64](r, "dir")
		rs := ccift.Reg[float64](r, "rs")

		if !r.Restarting() {
			*a = make([]float64, rows*n)
			*x = make([]float64, rows)
			*res = make([]float64, rows)
			*dir = make([]float64, rows)
			for li := 0; li < rows; li++ {
				gi := lo + li
				sum := 0.0
				for j := 0; j < n; j++ {
					if j != gi {
						v := entry(gi, j)
						(*a)[li*n+j] = v
						sum += v
					}
				}
				(*a)[li*n+gi] = sum + 1
			}
			for i := range *res {
				(*res)[i], (*dir)[i] = 1, 1
			}
			*rs = ccift.Allreduce(r, []float64{dot(*res, *res)}, ccift.SumF64)[0]
		}

		for ; *it < iters; *it++ {
			r.PotentialCheckpoint()
			p := r.AllgatherF64(*dir)
			q := make([]float64, rows)
			for li := 0; li < rows; li++ {
				row := (*a)[li*n : (li+1)*n]
				s := 0.0
				for j, pv := range p {
					s += row[j] * pv
				}
				q[li] = s
			}
			alpha := *rs / ccift.Allreduce(r, []float64{dot(*dir, q)}, ccift.SumF64)[0]
			for i := range *x {
				(*x)[i] += alpha * (*dir)[i]
				(*res)[i] -= alpha * q[i]
			}
			rsNew := ccift.Allreduce(r, []float64{dot(*res, *res)}, ccift.SumF64)[0]
			beta := rsNew / *rs
			*rs = rsNew
			for i := range *dir {
				(*dir)[i] = (*res)[i] + beta*(*dir)[i]
			}
			// Write intent for the (default) incremental freeze: the
			// iteration rewrote these vectors; a is read-only and rs/it are
			// scalars, which never need a Touch.
			r.Touch("x", "res", "dir")
		}
		norm := ccift.Allreduce(r, []float64{dot(*x, *x)}, ccift.SumF64)[0]
		return fmt.Sprintf("‖x‖=%.9f residual=%.3g", math.Sqrt(norm), math.Sqrt(*rs)), nil
	}
}

// entry is a deterministic pseudo-random symmetric off-diagonal generator.
func entry(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	h := uint64(i)*0x9E37 + uint64(j)*0x79B9 + 12345
	h ^= h >> 13
	h *= 0x2545F4914F6CDD1D
	h ^= h >> 35
	return float64(h%1000) / 4000.0
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
