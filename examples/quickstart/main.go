// Quickstart: a four-rank program that checkpoints every few iterations
// and survives an injected failure of rank 2.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccift"
)

func main() {
	prog := func(r *ccift.Rank) (any, error) {
		// Recoverable state: register everything a restart must restore.
		var it int
		var acc float64
		r.Register("it", &it)
		r.Register("acc", &acc)

		for ; it < 50; it++ {
			// A checkpoint may be taken here whenever the initiator asks.
			r.PotentialCheckpoint()

			// Each rank contributes its rank number; the global sum after
			// 50 iterations is 50 * (0+1+2+3) = 300 on every rank.
			part := r.AllreduceF64([]float64{float64(r.Rank())}, ccift.SumF64)
			acc += part[0]
		}
		return acc, nil
	}

	res, err := ccift.Run(ccift.Config{
		Ranks:  4,
		Mode:   ccift.Full,
		EveryN: 10, // global checkpoint every 10 iterations
		// Rank 2 stop-fails at its 120th operation; the run rolls back to
		// the last committed checkpoint and completes anyway.
		Failures: []ccift.Failure{{Rank: 2, AtOp: 120}},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result on every rank: %v\n", res.Values)
	fmt.Printf("restarts: %d, recovered from epochs: %v\n", res.Restarts, res.RecoveredEpochs)
}
