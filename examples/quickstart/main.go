// Quickstart: a four-rank program that checkpoints every few iterations
// and survives an injected failure of rank 2, written against the ccift v1
// API — one Launch call, typed state registration, functional options.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ccift"
)

func main() {
	short := flag.Bool("short", false, "run a reduced problem (CI)")
	flag.Parse()
	iters := 50
	if *short {
		iters = 20
	}

	prog := func(r *ccift.Rank) (any, error) {
		// Recoverable state: everything a restart must restore is declared
		// once; Reg returns a pointer the checkpoint machinery tracks.
		it := ccift.Reg[int](r, "it")
		acc := ccift.Reg[float64](r, "acc")

		for ; *it < iters; *it++ {
			// A checkpoint may be taken here whenever the initiator asks.
			r.PotentialCheckpoint()

			// Each rank contributes its rank number; the global sum after
			// iters iterations is iters * (0+1+2+3) on every rank.
			part := ccift.Allreduce(r, []float64{float64(r.Rank())}, ccift.SumF64)
			*acc += part[0]
		}
		return *acc, nil
	}

	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(4),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(10), // global checkpoint every 10 iterations
		// Rank 2 stop-fails at its 120th operation; the run rolls back to
		// the last committed checkpoint and completes anyway.
		ccift.WithFailures(ccift.Failure{Rank: 2, AtOp: 120}),
	), prog)
	if err != nil {
		// Dispatch on the error taxonomy, not message text: every Launch
		// error matches exactly one ccift.Err* sentinel via errors.Is.
		if errors.Is(err, ccift.ErrMaxRestarts) {
			fmt.Fprintln(os.Stderr, "quickstart: restart budget exhausted:", err)
		} else {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
		}
		os.Exit(ccift.ExitCode(err))
	}

	fmt.Printf("result on every rank: %v\n", res.Values)
	fmt.Printf("restarts: %d, recovered from epochs: %v\n", res.Restarts, res.RecoveredEpochs)
	// Per-rank protocol counters are always populated (on the distributed
	// substrate too — workers stream them back to the launcher).
	for _, pr := range res.PerRank {
		fmt.Printf("rank %d: %d checkpoints (%d bytes)\n", pr.Rank, pr.Stats.CheckpointsTaken, pr.Stats.CheckpointBytes)
	}
}
