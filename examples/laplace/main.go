// Laplace solver under wall-clock checkpointing: the paper's second
// benchmark. An n×n plate is relaxed by neighbour averaging, block rows
// per rank, border rows exchanged each iteration — the halo messages are
// where the protocol's piggybacked control information rides. Checkpoints
// fire on a wall-clock interval, as in the paper's 30-second setting.
//
//	go run ./examples/laplace -n 512 -iters 2000 -interval 500ms
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ccift"
)

const (
	tagUp   = 1
	tagDown = 2
)

func main() {
	n := flag.Int("n", 512, "grid edge")
	iters := flag.Int("iters", 2000, "iterations")
	ranks := flag.Int("ranks", 8, "ranks")
	interval := flag.Duration("interval", 500*time.Millisecond, "checkpoint interval (paper: 30s)")
	flag.Parse()

	start := time.Now()
	res, err := ccift.Run(ccift.Config{
		Ranks:    *ranks,
		Mode:     ccift.Full,
		Interval: *interval,
	}, laplaceProgram(*n, *iters))
	if err != nil {
		log.Fatal(err)
	}
	var ckpts int64
	var mb float64
	for _, s := range res.Stats {
		ckpts += s.CheckpointsTaken
		mb += float64(s.CheckpointBytes) / 1e6
	}
	fmt.Printf("heat checksum: %v\n", res.Values[0])
	fmt.Printf("%.2fs elapsed, %d local checkpoints (%.1f MB) at a %v interval\n",
		time.Since(start).Seconds(), ckpts, mb, *interval)
}

func laplaceProgram(n, iters int) ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		ranks := r.Size()
		if n%ranks != 0 {
			return nil, fmt.Errorf("n=%d not divisible by %d ranks", n, ranks)
		}
		rows := n / ranks
		me := r.Rank()

		// grid holds a ghost row, the owned block, and another ghost row.
		var it int
		grid := make([]float64, (rows+2)*n)
		next := make([]float64, (rows+2)*n)
		r.Register("it", &it)
		r.Register("grid", &grid)
		r.Register("next", &next)

		if !r.Restarting() && me == 0 {
			for j := 0; j < n; j++ {
				grid[1*n+j] = 1 // hot top edge
			}
		}

		for ; it < iters; it++ {
			r.PotentialCheckpoint()

			// Halo exchange with the ranks above and below.
			if me > 0 {
				r.SendF64(me-1, tagUp, grid[1*n:2*n])
			}
			if me < ranks-1 {
				r.SendF64(me+1, tagDown, grid[rows*n:(rows+1)*n])
			}
			if me < ranks-1 {
				copy(grid[(rows+1)*n:], r.RecvF64(me+1, tagUp))
			}
			if me > 0 {
				copy(grid[0:n], r.RecvF64(me-1, tagDown))
			}

			for li := 1; li <= rows; li++ {
				gi := me*rows + li - 1
				for j := 0; j < n; j++ {
					if gi == 0 {
						next[li*n+j] = grid[li*n+j] // fixed boundary row
						continue
					}
					up := grid[(li-1)*n+j]
					down := grid[(li+1)*n+j]
					left, right := 0.0, 0.0
					if j > 0 {
						left = grid[li*n+j-1]
					}
					if j < n-1 {
						right = grid[li*n+j+1]
					}
					next[li*n+j] = (up + down + left + right) / 4
				}
			}
			grid, next = next, grid
		}

		local := 0.0
		for li := 1; li <= rows; li++ {
			for j := 0; j < n; j++ {
				local += grid[li*n+j]
			}
		}
		total := r.AllreduceF64([]float64{local}, ccift.SumF64)
		return fmt.Sprintf("%.6f", total[0]), nil
	}
}
