// Laplace solver under wall-clock checkpointing: the paper's second
// benchmark. An n×n plate is relaxed by neighbour averaging, block rows
// per rank, border rows exchanged each iteration — the halo messages are
// where the protocol's piggybacked control information rides. Checkpoints
// fire on a wall-clock interval, as in the paper's 30-second setting, and
// the halo exchange uses the typed ccift.Send/ccift.Recv front end (one
// payload copy instead of SendF64's two).
//
//	go run ./examples/laplace -n 512 -iters 2000 -interval 500ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"ccift"
)

const (
	tagUp   = 1
	tagDown = 2
)

func main() {
	n := flag.Int("n", 512, "grid edge")
	iters := flag.Int("iters", 2000, "iterations")
	ranks := flag.Int("ranks", 8, "ranks")
	interval := flag.Duration("interval", 500*time.Millisecond, "checkpoint interval (paper: 30s)")
	short := flag.Bool("short", false, "run a reduced problem (CI)")
	flag.Parse()
	if *short {
		*n, *iters, *interval = 64, 120, 20*time.Millisecond
	}

	start := time.Now()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(*ranks),
		ccift.WithMode(ccift.Full),
		ccift.WithInterval(*interval),
	), laplaceProgram(*n, *iters))
	if err != nil {
		// errors.Is against the ccift.Err* sentinels, never the message.
		if errors.Is(err, ccift.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "laplace: canceled:", err)
		} else {
			fmt.Fprintln(os.Stderr, "laplace:", err)
		}
		os.Exit(ccift.ExitCode(err))
	}
	var ckpts int64
	var mb float64
	for _, pr := range res.PerRank {
		ckpts += pr.Stats.CheckpointsTaken
		mb += float64(pr.Stats.CheckpointBytes) / 1e6
	}
	fmt.Printf("heat checksum: %v\n", res.Values[0])
	fmt.Printf("%.2fs elapsed, %d local checkpoints (%.1f MB) at a %v interval\n",
		time.Since(start).Seconds(), ckpts, mb, *interval)
}

func laplaceProgram(n, iters int) ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		ranks := r.Size()
		if n%ranks != 0 {
			return nil, fmt.Errorf("n=%d not divisible by %d ranks", n, ranks)
		}
		rows := n / ranks
		me := r.Rank()

		// grid holds a ghost row, the owned block, and another ghost row.
		it := ccift.Reg[int](r, "it")
		grid := ccift.Reg[[]float64](r, "grid")
		next := ccift.Reg[[]float64](r, "next")
		if !r.Restarting() {
			*grid = make([]float64, (rows+2)*n)
			*next = make([]float64, (rows+2)*n)
			if me == 0 {
				for j := 0; j < n; j++ {
					(*grid)[1*n+j] = 1 // hot top edge
				}
			}
		}

		for ; *it < iters; *it++ {
			r.PotentialCheckpoint()
			g, nx := *grid, *next

			// Halo exchange with the ranks above and below.
			if me > 0 {
				ccift.Send(r, me-1, tagUp, g[1*n:2*n])
			}
			if me < ranks-1 {
				ccift.Send(r, me+1, tagDown, g[rows*n:(rows+1)*n])
			}
			if me < ranks-1 {
				copy(g[(rows+1)*n:], ccift.Recv[float64](r, me+1, tagUp))
			}
			if me > 0 {
				copy(g[0:n], ccift.Recv[float64](r, me-1, tagDown))
			}

			for li := 1; li <= rows; li++ {
				gi := me*rows + li - 1
				for j := 0; j < n; j++ {
					if gi == 0 {
						nx[li*n+j] = g[li*n+j] // fixed boundary row
						continue
					}
					up := g[(li-1)*n+j]
					down := g[(li+1)*n+j]
					left, right := 0.0, 0.0
					if j > 0 {
						left = g[li*n+j-1]
					}
					if j < n-1 {
						right = g[li*n+j+1]
					}
					nx[li*n+j] = (up + down + left + right) / 4
				}
			}
			*grid, *next = nx, g
			// Write intent for the (default) incremental freeze: the sweep
			// rewrote the interior and the swap rebound both slices.
			r.Touch("grid", "next")
		}

		local := 0.0
		for li := 1; li <= rows; li++ {
			for j := 0; j < n; j++ {
				local += (*grid)[li*n+j]
			}
		}
		total := ccift.Allreduce(r, []float64{local}, ccift.SumF64)
		return fmt.Sprintf("%.6f", total[0]), nil
	}
}
