// Neurosys under checkpointing: the paper's third benchmark, a neuron
// network integrated with RK4 where every time step performs five
// allgathers and a gather. With tiny per-neuron state, the protocol's
// control collectives are the dominant cost — this example runs the same
// problem in all four Figure-8 modes and prints the overhead breakdown the
// paper discusses.
//
//	go run ./examples/neurosys -k 32 -iters 400
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"ccift"
)

func main() {
	k := flag.Int("k", 32, "neuron-grid edge (the network has k*k neurons)")
	iters := flag.Int("iters", 400, "RK4 time steps")
	ranks := flag.Int("ranks", 8, "ranks")
	every := flag.Int("every", 100, "checkpoint every N steps")
	short := flag.Bool("short", false, "run a reduced problem (CI)")
	flag.Parse()
	if *short {
		*k, *iters, *every = 16, 60, 20
	}

	modes := []ccift.Mode{ccift.Unmodified, ccift.PiggybackOnly, ccift.NoAppState, ccift.Full}
	base := 0.0
	for _, mode := range modes {
		spec := ccift.NewSpec(
			ccift.WithRanks(*ranks),
			ccift.WithMode(mode),
			ccift.WithEveryN(*every),
		)
		start := time.Now()
		res, err := ccift.Launch(context.Background(), spec, neurosysProgram(*k, *iters))
		if err != nil {
			// errors.Is against the ccift.Err* sentinels, never the message.
			if errors.Is(err, ccift.ErrSpec) {
				fmt.Fprintln(os.Stderr, "neurosys: invalid spec:", err)
			} else {
				fmt.Fprintln(os.Stderr, "neurosys:", err)
			}
			os.Exit(ccift.ExitCode(err))
		}
		elapsed := time.Since(start).Seconds()
		if mode == ccift.Unmodified {
			base = elapsed
		}
		var ctl int64
		for _, pr := range res.PerRank {
			ctl += pr.Stats.ControlCollectives
		}
		fmt.Printf("%-15v %.3fs  (%+.1f%%)  control collectives: %d  checksum: %v\n",
			mode, elapsed, (elapsed/base-1)*100, ctl, res.Values[0])
	}
}

// neurosysProgram integrates a k*k excitatory/inhibitory neuron network.
func neurosysProgram(k, iters int) ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		n := k * k
		ranks := r.Size()
		if n%ranks != 0 {
			return nil, fmt.Errorf("%d neurons not divisible by %d ranks", n, ranks)
		}
		local := n / ranks
		lo := r.Rank() * local
		const dt = 0.01

		it := ccift.Reg[int](r, "it")
		v := ccift.Reg[[]float64](r, "v")
		drive := ccift.Reg[[]float64](r, "drive")

		if !r.Restarting() {
			*v = make([]float64, local)
			*drive = make([]float64, local)
			for i := range *v {
				gi := lo + i
				(*v)[i] = 0.5 * math.Sin(float64(gi)*0.7)
				(*drive)[i] = 0.1 + 0.05*math.Cos(float64(gi)*0.3)
			}
		}

		deriv := func(all []float64, i int, vi float64) float64 {
			gi := lo + i
			// Four grid neighbours excite; the diagonal inhibits.
			row, col := gi/k, gi%k
			in := 0.0
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := row+d[0], col+d[1]
				if nr >= 0 && nr < k && nc >= 0 && nc < k {
					in += 0.25 * all[nr*k+nc]
				}
			}
			inh := all[((row+col)%k)*k+col]
			return -vi + math.Tanh(in-0.3*inh+(*drive)[i])
		}

		for ; *it < iters; *it++ {
			r.PotentialCheckpoint()
			vs := *v

			// RK4: each sub-stage needs the full network state — the five
			// allgathers of the paper's description (four stages plus the
			// final assembly below).
			all := r.AllgatherF64(vs)
			k1 := make([]float64, local)
			for i := range k1 {
				k1[i] = deriv(all, i, vs[i])
			}
			all = r.AllgatherF64(stageState(vs, k1, dt/2))
			k2 := make([]float64, local)
			for i := range k2 {
				k2[i] = deriv(all, i, vs[i]+dt/2*k1[i])
			}
			all = r.AllgatherF64(stageState(vs, k2, dt/2))
			k3 := make([]float64, local)
			for i := range k3 {
				k3[i] = deriv(all, i, vs[i]+dt/2*k2[i])
			}
			all = r.AllgatherF64(stageState(vs, k3, dt))
			k4 := make([]float64, local)
			for i := range k4 {
				k4[i] = deriv(all, i, vs[i]+dt*k3[i])
			}
			for i := range vs {
				vs[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			}
			// Write intent for the (default) incremental freeze: only the
			// membrane block changes per step; drive is read-only after
			// initialization and it is a scalar.
			r.Touch("v")
			_ = r.AllgatherF64(vs) // network state published for monitoring
			if *it%50 == 0 {
				r.GatherF64(0, vs) // periodic observation at the root
			}
		}

		local0 := 0.0
		for _, x := range *v {
			local0 += x
		}
		sum := ccift.Allreduce(r, []float64{local0}, ccift.SumF64)
		return fmt.Sprintf("%.9f", sum[0]), nil
	}
}

func stageState(v, k []float64, h float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] + h*k[i]
	}
	return out
}
