// Recovery walkthrough: a program with logged non-determinism survives two
// stopping failures in successive incarnations, with checkpoints on disk.
// The output shows each rollback, the epoch recovered from, and the
// late-message / suppression machinery at work.
//
//	go run ./examples/recovery
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"ccift"
)

func main() {
	flag.Bool("short", false, "accepted for CI symmetry; the walkthrough is already small")
	flag.Parse()

	dir, err := os.MkdirTemp("", "ccift-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := ccift.NewDiskStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	prog := func(r *ccift.Rank) (any, error) {
		it := ccift.Reg[int](r, "it")
		trace := ccift.Reg[[]float64](r, "trace")

		for ; *it < 40; *it++ {
			r.PotentialCheckpoint()
			if r.Rank() == 0 {
				// A logged non-deterministic decision: raw randomness
				// diverges between incarnations, but the log pins the values
				// the surviving global state depends on.
				v := r.Random()
				*trace = append(*trace, v)
				r.Touch("trace") // write intent for the incremental freeze
				ccift.Send(r, 1, 1, []float64{v})
			} else if r.Rank() == 1 {
				in := ccift.Recv[float64](r, 0, 1)
				*trace = append(*trace, in[0])
				r.Touch("trace")
			} else {
				r.Barrier() // other ranks synchronize each round
				continue
			}
			r.Barrier()
		}
		sum := 0.0
		for _, v := range *trace {
			sum += v
		}
		return fmt.Sprintf("%.12f", sum), nil
	}

	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(3),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(8),
		ccift.WithStore(store),
		ccift.WithFailures(
			ccift.Failure{Rank: 1, AtOp: 150, Incarnation: 0}, // first failure
			ccift.Failure{Rank: 0, AtOp: 100, Incarnation: 1}, // second, during recovery's run
		),
	), prog)
	if err != nil {
		// errors.Is against the ccift.Err* sentinels, never the message.
		switch {
		case errors.Is(err, ccift.ErrStore):
			fmt.Fprintln(os.Stderr, "recovery: checkpoint store failed:", err)
		case errors.Is(err, ccift.ErrMaxRestarts):
			fmt.Fprintln(os.Stderr, "recovery: restart budget exhausted:", err)
		default:
			fmt.Fprintln(os.Stderr, "recovery:", err)
		}
		os.Exit(ccift.ExitCode(err))
	}

	fmt.Printf("checkpoints stored under %s\n", dir)
	fmt.Printf("survived %d failures; recovered from epochs %v\n", res.Restarts, res.RecoveredEpochs)
	if res.Values[0] != res.Values[1] {
		log.Fatalf("rank views diverged: %v vs %v", res.Values[0], res.Values[1])
	}
	fmt.Printf("ranks 0 and 1 agree on the random trace: sum = %v\n", res.Values[0])

	var late, replayed, suppressed, events int64
	var blockedNs, flushNs, logical, written int64
	for _, pr := range res.PerRank {
		s := pr.Stats
		late += s.LateLogged
		replayed += s.ReplayedLate
		suppressed += s.SuppressedSends
		events += s.EventsLogged
		blockedNs += s.CheckpointBlockedNs
		flushNs += s.CheckpointFlushNs
		logical += s.CheckpointBytes
		written += s.CheckpointBytesWritten
	}
	fmt.Printf("protocol activity: %d late messages logged, %d replayed on recovery, %d re-sends suppressed, %d non-deterministic events logged\n",
		late, replayed, suppressed, events)
	// The async pipeline's ledger (WithAsyncCheckpoint, on by default):
	// ranks block only to freeze a copy of their state; serialization and
	// the chunk-deduplicated durable write overlap computation.
	fmt.Printf("checkpoint cost: ranks blocked %.2fms total, %.2fms of flushing overlapped; %d state bytes serialized, %d written after chunk dedup\n",
		float64(blockedNs)/1e6, float64(flushNs)/1e6, logical, written)
}
