// This is the precompiler INPUT: a plain program whose only
// fault-tolerance provision is its PotentialCheckpoint calls, exactly as
// the paper prescribes ("almost unmodified single-threaded C/MPI source").
// The committed main.go next to this file is the CCIFT output; regenerate
// it with:
//
//	go run ./cmd/ccift -o examples/precompiled/main.go examples/precompiled/main.go.in
//
// Note what the programmer did NOT write: no state registration, no resume
// dispatch, no position bookkeeping. The checkpoint sits mid-iteration —
// after the sends and receives — and a second one hides inside relax(); the
// precompiler's Position Stack instrumentation is what makes resuming at
// those points possible.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ccift"
)

func main() {
	flag.Bool("short", false, "accepted for CI symmetry; the demo is already small")
	flag.Parse()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(4),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(6),
		ccift.WithFailures(ccift.Failure{Rank: 2, AtOp: 160}),
	), func(r *ccift.Rank) (any, error) {
		return worker(r, 30), nil
	})
	if err != nil {
		// errors.Is against the ccift.Err* sentinels, never the message.
		if errors.Is(err, ccift.ErrProgram) {
			fmt.Fprintln(os.Stderr, "precompiled: application error:", err)
		} else {
			fmt.Fprintln(os.Stderr, "precompiled:", err)
		}
		os.Exit(ccift.ExitCode(err))
	}
	fmt.Printf("values: %v (restarts: %d, recovered epochs: %v)\n",
		res.Values, res.Restarts, res.RecoveredEpochs)
}

func worker(r *ccift.Rank, iters int) float64 {
	var it int
	var acc float64
	var in []float64
	var next int
	var prev int
	r.Register("worker.iters", &iters)
	defer r.Unregister()
	r.Register("worker.it", &it)
	defer r.Unregister()
	r.Register("worker.acc", &acc)
	defer r.Unregister()
	r.Register("worker.in", &in)
	defer r.Unregister()
	r.Register("worker.next", &next)
	defer r.Unregister()
	r.Register("worker.prev", &prev)
	defer r.Unregister()
	var ccift_target int
	if r.PS().Resuming() {
		ccift_target = r.PS().Resume()
	}
	switch ccift_target {
	case 1, 2:
		goto ccift_c1
	}
	next = (r.Rank() + 1) % r.Size()
	prev = (r.Rank() - 1 + r.Size()) % r.Size()
	acc = float64(r.Rank() + 1)
ccift_c1:
	for ; it < iters; it++ {
		switch ccift_target {
		case 1:
			ccift_target = 0
			goto ccift_l1
		case 2:
			ccift_target = 0
			goto ccift_l2
		}
		r.SendF64(next, 1, []float64{acc})
		in = r.RecvF64(prev, 1)
		r.Touch("worker.in") // precompiler-emitted write intent: Recv rebound the slice
		acc = acc*0.75 + in[0]*0.25
		r.PS().Push(1)
		r.PotentialCheckpoint()
	ccift_l1:
		r.PS().Pop()
		r.PS().Push(2)
	ccift_l2:
		acc = relax(r, acc)
		r.PS().Pop()
	}

	out := r.AllreduceF64([]float64{acc}, ccift.SumF64)
	return out[0]
}

func relax(r *ccift.Rank, x float64) float64 {
	var y float64
	r.Register("relax.x", &x)
	defer r.Unregister()
	r.Register("relax.y", &y)
	defer r.Unregister()
	var ccift_target int
	if r.PS().Resuming() {
		ccift_target = r.PS().Resume()
	}
	switch ccift_target {
	case 1:
		ccift_target = 0
		goto ccift_l1
	}
	y = x*0.5 + 1
	r.PS().Push(1)
	r.PotentialCheckpoint()
ccift_l1:
	r.PS().Pop()
	return y + 0.125
}
